(** Generic worklist dataflow engine over {!Cfg}.

    Instantiate {!Make} with a join-semilattice of facts and a
    per-instruction transfer function; the engine iterates blocks in
    reverse postorder (forward) or postorder (backward) until a fixed
    point, then exposes the fact at every instruction boundary.

    {!Ferrum_analysis.Liveness} is the canonical backward gen/kill
    client; the shadow-consistency scanner uses a forward instance. *)

open Ferrum_asm

type direction = Forward | Backward

module type DOMAIN = sig
  type fact

  val bottom : fact
  (** Initial fact at every block boundary (and the boundary fact of
      entry/exit blocks). *)

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact

  val transfer : Instr.ins -> fact -> fact
  (** Fact flowing {e across} one instruction: input is the fact
      before the instruction for a forward analysis, after it for a
      backward one. *)
end

module Make (D : DOMAIN) : sig
  type t

  val solve : direction -> Cfg.t -> t
  (** Run to fixpoint. Worst case O(blocks² · insns) but reverse
      postorder ordering makes typical runs a couple of sweeps. *)

  val before : t -> int -> int -> D.fact
  (** [before t block k]: fact immediately before instruction [k] of
      block [block] (execution order, regardless of direction). *)

  val after : t -> int -> int -> D.fact
  (** Fact immediately after instruction [k]. *)

  val block_in : t -> int -> D.fact
  (** Fact at block entry (execution order). *)

  val block_out : t -> int -> D.fact
  (** Fact at block exit (execution order). *)
end
