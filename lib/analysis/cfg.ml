(* Control-flow graph over assembly functions.

   Prog blocks are labelled extended blocks (protection transforms emit
   mid-block checker exits), so basic blocks are re-derived here:
   leaders are the first instruction of every labelled block and every
   instruction that follows a jump, conditional jump or return.  Edges
   are fall-through (to the next basic block in layout order, when the
   previous one does not end in a barrier) plus label targets; a jump
   to [exit_function] is a detector exit and produces no edge. *)

open Ferrum_asm

type block = {
  id : int;
  label : string;
  offset : int;
  insns : Instr.ins array;
  succs : int list;
  preds : int list;
}

type t = {
  func : Prog.func;
  blocks : block array;
  by_label : (string, int) Hashtbl.t;
}

let exit_l = Prog.exit_function_label

(* Split one Prog block into leader-delimited runs of instructions:
   a new run starts after every control transfer. *)
let runs_of_block (b : Prog.block) : (int * Instr.ins array) list =
  let insns = Array.of_list b.insns in
  let n = Array.length insns in
  let cuts = ref [] in
  for k = 0 to n - 1 do
    match insns.(k).Instr.op with
    | Instr.Jmp _ | Instr.Jcc _ | Instr.Ret when k + 1 < n ->
      cuts := (k + 1) :: !cuts
    | _ -> ()
  done;
  let starts = 0 :: List.rev !cuts in
  let rec slice = function
    | [] -> []
    | [ s ] -> [ (s, Array.sub insns s (n - s)) ]
    | s :: (s' :: _ as rest) -> (s, Array.sub insns s (s' - s)) :: slice rest
  in
  if n = 0 then [ (0, [||]) ] else slice starts

let build (f : Prog.func) : t =
  let by_label = Hashtbl.create 16 in
  let protos = ref [] in
  (* number the basic blocks in layout order *)
  let count = ref 0 in
  List.iter
    (fun (b : Prog.block) ->
      List.iteri
        (fun i (offset, insns) ->
          let id = !count in
          incr count;
          if i = 0 then Hashtbl.replace by_label b.label id;
          protos := (id, b.label, offset, insns) :: !protos)
        (runs_of_block b))
    f.blocks;
  let protos = Array.of_list (List.rev !protos) in
  let n = Array.length protos in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let target l = if String.equal l exit_l then None else Hashtbl.find_opt by_label l in
  Array.iteri
    (fun i (_, _, _, (insns : Instr.ins array)) ->
      let m = Array.length insns in
      let fallthrough = if i + 1 < n then [ i + 1 ] else [] in
      let s =
        if m = 0 then fallthrough
        else
          match insns.(m - 1).Instr.op with
          | Instr.Ret -> []
          | Instr.Jmp l -> ( match target l with Some j -> [ j ] | None -> [])
          | Instr.Jcc (_, l) -> (
            match target l with
            | Some j -> fallthrough @ [ j ]
            | None -> fallthrough)
          | _ -> fallthrough
      in
      succs.(i) <- s)
    protos;
  Array.iteri (fun i s -> List.iter (fun j -> preds.(j) <- i :: preds.(j)) s) succs;
  let blocks =
    Array.mapi
      (fun i (id, label, offset, insns) ->
        assert (id = i);
        { id; label; offset; insns; succs = succs.(i);
          preds = List.rev preds.(i) })
      protos
  in
  { func = f; blocks; by_label }

let reverse_postorder (t : t) : int array =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.blocks.(i).succs;
      post := i :: !post
    end
  in
  if n > 0 then dfs 0;
  let reachable = !post in
  let rest = List.filter (fun i -> not seen.(i)) (List.init n Fun.id) in
  Array.of_list (reachable @ rest)

(* Cooper–Harvey–Kennedy "engineered" dominator iteration. *)
let dominators (t : t) : int array =
  let n = Array.length t.blocks in
  let rpo = reverse_postorder t in
  let order = Array.make n (-1) in
  (* position of each reachable block in the rpo sequence *)
  let reachable = Array.make n false in
  let count = ref 0 in
  Array.iter
    (fun i ->
      order.(i) <- !count;
      incr count)
    rpo;
  (* mark reachability via dfs order: rpo lists reachable blocks first *)
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      reachable.(i) <- true;
      List.iter dfs t.blocks.(i).succs
    end
  in
  if n > 0 then dfs 0;
  let idom = Array.make n (-1) in
  if n = 0 then idom
  else begin
    idom.(0) <- 0;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while order.(!a) > order.(!b) do
          a := idom.(!a)
        done;
        while order.(!b) > order.(!a) do
          b := idom.(!b)
        done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun i ->
          if i <> 0 && reachable.(i) then begin
            let preds =
              List.filter (fun p -> reachable.(p) && idom.(p) <> -1)
                t.blocks.(i).preds
            in
            match preds with
            | [] -> ()
            | p :: rest ->
              let d = List.fold_left intersect p rest in
              if idom.(i) <> d then begin
                idom.(i) <- d;
                changed := true
              end
          end)
        rpo
    done;
    idom
  end

let dominates (_t : t) (idom : int array) a b =
  if b < 0 || b >= Array.length idom || idom.(b) = -1 then false
  else begin
    let rec walk x = x = a || (x <> idom.(x) && walk idom.(x)) in
    walk b
  end

let unreachable (t : t) : int list =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.blocks.(i).succs
    end
  in
  if n > 0 then dfs 0;
  List.filter (fun i -> not seen.(i)) (List.init n Fun.id)

let position (t : t) id k =
  let b = t.blocks.(id) in
  (b.label, b.offset + k)
