(** Golden-run checkpoints for fast fault injection.

    A {!cache} is built once per target by walking the golden execution
    and capturing the architectural state every [interval] dynamic
    instructions; memory is stored as dirty-page deltas against the
    previous checkpoint (via {!Machine.track_writes}).  A {!slot} is a
    pooled {!Machine.state} that can be restored to the checkpoint
    nearest below any sampled injection index without allocating —
    restoration rewrites only the pages the previous run dirtied plus
    the delta pages between the two checkpoints.

    Restored states are bit-identical to running the same number of
    steps from a fresh state, which is what lets
    {!Ferrum_faultsim.Faultsim} guarantee checkpointed campaigns match
    the scratch path byte for byte. *)

type cache

type slot

(** Walk the golden run of [img], capturing a checkpoint every
    [interval] dynamic instructions ([None] = no checkpoints — the
    cache degenerates to a pristine image usable for pooled scratch
    runs).  [counted idx] says whether the retired instruction at
    static index [idx] is an eligible write-back; checkpoints record
    how many eligible write-backs retired before them so {!restore}
    can translate an injection's dynamic index into a resume point.
    The walk stops at halt, trap, or control leaving the code array.

    @raise Invalid_argument if [interval < 1]. *)
val build : ?interval:int -> counted:(int -> bool) -> Machine.image -> cache

(** Number of checkpoints captured. *)
val ckpt_count : cache -> int

(** Index of the latest checkpoint whose eligible-write-back count is
    [<= dyn_index]; [-1] when only the pristine start qualifies. *)
val select : cache -> dyn_index:int -> int

(** A pooled state bound to [cache], initially pristine. *)
val make_slot : cache -> slot

(** The slot's state.  Valid until the next [restore]/[reset]. *)
val state : slot -> Machine.state

(** Restore the slot to the latest checkpoint at or before the
    [dyn_index]-th eligible write-back and return that checkpoint's
    eligible-write-back count (0 when restored to the pristine
    start). *)
val restore : slot -> dyn_index:int -> int

(** Restore the slot to the pristine start-of-program state. *)
val reset : slot -> unit

(** Make [dst]'s state bit-identical to [src]'s by copying registers
    and the pages [src] has dirtied.  Both slots must have been
    restored to the same checkpoint, with [dst] not executed since. *)
val sync : src:slot -> slot -> unit
