(* Deterministic x86-64 subset simulator.

   The simulator executes flattened {!Ferrum_asm.Prog.t} programs over an
   architectural state (16 GPRs, 16 SIMD registers of 8 x 64-bit lanes —
   ZMM width — ZF/SF/CF/OF, byte-addressable little-endian memory).  It reports one
   of four outcomes, matching the fault-injection literature's
   classification: normal exit with observable output, detection (control
   reached [exit_function] or [__ferrum_detect]), crash (memory trap,
   divide error, wild control transfer, stack overflow) or timeout.

   A per-step observer hook exposes the static index of the instruction
   that just retired; the fault injector uses it to flip one bit of one
   architectural destination right after write-back. *)

open Ferrum_asm

type outcome =
  | Exit of int64 list (* program output, oldest first *)
  | Detected
  | Crash of string
  | Timeout

let equal_outcome a b =
  match (a, b) with
  | Exit x, Exit y -> List.compare_lengths x y = 0 && List.for_all2 Int64.equal x y
  | Detected, Detected | Timeout, Timeout -> true
  | Crash _, Crash _ -> true
  | _ -> false

let pp_outcome ppf = function
  | Exit out -> Fmt.pf ppf "exit [%a]" Fmt.(list ~sep:(any "; ") int64) out
  | Detected -> Fmt.string ppf "detected"
  | Crash msg -> Fmt.pf ppf "crash (%s)" msg
  | Timeout -> Fmt.string ppf "timeout"

(* Pre-resolved control-flow target of an instruction. *)
type link =
  | L_none
  | L_target of int (* jmp/jcc destination *)
  | L_call of int (* callee entry index *)
  | L_detect (* transfer to the detector *)
  | L_print (* builtin print_i64 *)

type image = {
  code : Instr.ins array;
  links : link array;
  costs : float array;
  dests : Instr.dest list array; (* injectable destinations per index *)
  entry_ip : int;
  halt_ip : int; (* sentinel return address of the entry function *)
  mem_size : int;
}

exception Trap of string

exception Halt of outcome

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

(* ------------------------------------------------------------------ *)
(* Loading: flatten blocks, resolve labels and calls.                  *)
(* ------------------------------------------------------------------ *)

let load ?(cost_model = Cost.default) ?(mem_size = 1 lsl 20) (p : Prog.t) =
  Prog.validate p;
  let code = ref [] and n = ref 0 in
  let label_ix = Hashtbl.create 64 in
  let func_ix = Hashtbl.create 16 in
  List.iter
    (fun (f : Prog.func) ->
      Hashtbl.replace func_ix f.fname !n;
      List.iter
        (fun (b : Prog.block) ->
          if Hashtbl.mem label_ix b.label then
            Prog.ill_formed "duplicate label across program: %s" b.label;
          Hashtbl.replace label_ix b.label !n;
          List.iter
            (fun i ->
              code := i :: !code;
              incr n)
            b.insns)
        f.blocks)
    p.funcs;
  let code = Array.of_list (List.rev !code) in
  let len = Array.length code in
  let resolve_label l =
    if String.equal l Prog.exit_function_label then L_detect
    else
      match Hashtbl.find_opt label_ix l with
      | Some i -> L_target i
      | None -> Prog.ill_formed "unresolved label %s" l
  in
  let links =
    Array.map
      (fun (i : Instr.ins) ->
        match i.op with
        | Instr.Jmp l | Instr.Jcc (_, l) -> resolve_label l
        | Instr.Call f ->
          if String.equal f Prog.builtin_print then L_print
          else if String.equal f Prog.builtin_detect then L_detect
          else (
            match Hashtbl.find_opt func_ix f with
            | Some i -> L_call i
            | None -> Prog.ill_formed "unresolved call %s" f)
        | _ -> L_none)
      code
  in
  let costs = Array.map (Cost.cost cost_model) code in
  let dests = Array.map (fun (i : Instr.ins) -> Instr.defs i.op) code in
  let entry_ip =
    match Hashtbl.find_opt func_ix p.entry with
    | Some i -> i
    | None -> Prog.ill_formed "no entry %s" p.entry
  in
  { code; links; costs; dests; entry_ip; halt_ip = len + 1; mem_size }

(* ------------------------------------------------------------------ *)
(* Architectural state.                                                *)
(* ------------------------------------------------------------------ *)

(* Dirty-page log: which memory pages have been written since the last
   {!clear_dirty}.  The bitmap makes the per-write test O(1); the page
   list makes clearing and iteration proportional to the pages actually
   touched, never to the address space.  Attached on demand
   ({!track_writes}) so the plain interpreter pays one [None] branch per
   store; {!Snapshot} and the pooled injection loops are the users. *)
type track = {
  tr_bits : Bytes.t; (* one byte per page: '\001' = dirty *)
  tr_pages : int array; (* dirty page numbers, insertion order *)
  mutable tr_count : int;
}

let page_bits = 12

let page_size = 1 lsl page_bits

type regfile = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_regfile n : regfile =
  let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0L;
  a

let copy_regfile (r : regfile) : regfile =
  let c = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout
      (Bigarray.Array1.dim r) in
  Bigarray.Array1.blit r c;
  c

let blit_regfile (src : regfile) (dst : regfile) = Bigarray.Array1.blit src dst

let dump_regfile (r : regfile) =
  Array.init (Bigarray.Array1.dim r) (Bigarray.Array1.get r)

type state = {
  gpr : regfile; (* 16 *)
  simd : regfile; (* 16 registers x 8 lanes (ZMM width) *)
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable off : bool; (* OF *)
  mem : Bytes.t;
  mutable ip : int;
  mutable cycles : float;
  mutable steps : int;
  mutable out_rev : int64 list;
  mutable track : track option;
}

let mark_page tr p =
  if Bytes.unsafe_get tr.tr_bits p = '\000' then begin
    Bytes.unsafe_set tr.tr_bits p '\001';
    tr.tr_pages.(tr.tr_count) <- p;
    tr.tr_count <- tr.tr_count + 1
  end

let num_pages st = (Bytes.length st.mem + page_size - 1) lsr page_bits

let track_writes st =
  match st.track with
  | Some _ -> ()
  | None ->
    let n = num_pages st in
    st.track <-
      Some { tr_bits = Bytes.make n '\000'; tr_pages = Array.make n 0;
             tr_count = 0 }

let clear_dirty st =
  match st.track with
  | None -> ()
  | Some tr ->
    for i = 0 to tr.tr_count - 1 do
      Bytes.unsafe_set tr.tr_bits tr.tr_pages.(i) '\000'
    done;
    tr.tr_count <- 0

let fresh_state (img : image) =
  let st =
    {
      gpr = make_regfile 16;
      simd = make_regfile 128; (* 16 registers x 8 lanes (ZMM width) *)
      zf = false;
      sf = false;
      cf = false;
      off = false;
      mem = Bytes.make img.mem_size '\000';
      ip = img.entry_ip;
      cycles = 0.0;
      steps = 0;
      out_rev = [];
      track = None;
    }
  in
  (* Stack grows down from the top of memory; push the sentinel return
     address so that [ret] from the entry function halts cleanly. *)
  let sp = img.mem_size - 16 in
  Bytes.set_int64_le st.mem sp (Int64.of_int img.halt_ip);
  st.gpr.{Reg.gpr_index Reg.RSP} <- Int64.of_int sp;
  st

(* Blit register files, flags, scalars — everything but memory — from
   [src] into [st].  The cheap half of resetting a pooled state. *)
let reset_regs ~from:(src : state) st =
  Bigarray.Array1.blit src.gpr st.gpr;
  Bigarray.Array1.blit src.simd st.simd;
  st.zf <- src.zf;
  st.sf <- src.sf;
  st.cf <- src.cf;
  st.off <- src.off;
  st.ip <- src.ip;
  st.cycles <- src.cycles;
  st.steps <- src.steps;
  st.out_rev <- src.out_rev

(* Reset a pooled state to [pristine] (a never-executed {!fresh_state})
   by blitting, instead of allocating a new 1 MiB state per run.  The
   whole memory image is copied; {!Snapshot} restores incrementally via
   the dirty-page log instead when one is attached. *)
let reset_state ~pristine st =
  reset_regs ~from:pristine st;
  Bytes.blit pristine.mem 0 st.mem 0 (Bytes.length st.mem);
  clear_dirty st

let output st = List.rev st.out_rev

(* ------------------------------------------------------------------ *)
(* Register / memory access helpers.                                   *)
(* ------------------------------------------------------------------ *)

let mask_of_size = function
  | Reg.B -> 0xFFL
  | Reg.W -> 0xFFFFL
  | Reg.D -> 0xFFFFFFFFL
  | Reg.Q -> -1L

let sign_extend v = function
  | Reg.B -> Int64.shift_right (Int64.shift_left v 56) 56
  | Reg.W -> Int64.shift_right (Int64.shift_left v 48) 48
  | Reg.D -> Int64.shift_right (Int64.shift_left v 32) 32
  | Reg.Q -> v

let read_gpr st r s =
  Int64.logand st.gpr.{Reg.gpr_index r} (mask_of_size s)

(* x86 semantics: 32-bit writes zero the upper half, 8/16-bit writes
   merge into the old value. *)
let write_gpr st r s v =
  let i = Reg.gpr_index r in
  match s with
  | Reg.Q -> st.gpr.{i} <- v
  | Reg.D -> st.gpr.{i} <- Int64.logand v 0xFFFFFFFFL
  | Reg.W ->
    st.gpr.{i} <-
      Int64.logor
        (Int64.logand st.gpr.{i} (Int64.lognot 0xFFFFL))
        (Int64.logand v 0xFFFFL)
  | Reg.B ->
    st.gpr.{i} <-
      Int64.logor
        (Int64.logand st.gpr.{i} (Int64.lognot 0xFFL))
        (Int64.logand v 0xFFL)

let effective_address st (m : Instr.mem) =
  let base =
    match m.base with Some r -> st.gpr.{Reg.gpr_index r} | None -> 0L
  in
  let index =
    match m.index with
    | Some r -> Int64.mul st.gpr.{Reg.gpr_index r} (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) (Int64.of_int m.disp)

let check_addr st addr bytes =
  let a = Int64.to_int addr in
  if
    Int64.compare addr 0L < 0
    || Int64.compare addr (Int64.of_int (Bytes.length st.mem)) >= 0
    || a + bytes > Bytes.length st.mem || a < 0
  then trap "memory access at 0x%Lx" addr
  else a

let read_mem st addr s =
  match s with
  | Reg.B -> Int64.of_int (Char.code (Bytes.get st.mem (check_addr st addr 1)))
  | Reg.W -> Int64.of_int (Bytes.get_uint16_le st.mem (check_addr st addr 2))
  | Reg.D ->
    Int64.logand
      (Int64.of_int32 (Bytes.get_int32_le st.mem (check_addr st addr 4)))
      0xFFFFFFFFL
  | Reg.Q -> Bytes.get_int64_le st.mem (check_addr st addr 8)

(* A write of [n] bytes at [a] dirties at most two pages. *)
let mark_dirty st a n =
  match st.track with
  | None -> ()
  | Some tr ->
    let p0 = a lsr page_bits in
    mark_page tr p0;
    let p1 = (a + n - 1) lsr page_bits in
    if p1 <> p0 then mark_page tr p1

let write_mem st addr s v =
  match s with
  | Reg.B ->
    let a = check_addr st addr 1 in
    mark_dirty st a 1;
    Bytes.set st.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | Reg.W ->
    let a = check_addr st addr 2 in
    mark_dirty st a 2;
    Bytes.set_uint16_le st.mem a (Int64.to_int (Int64.logand v 0xFFFFL))
  | Reg.D ->
    let a = check_addr st addr 4 in
    mark_dirty st a 4;
    Bytes.set_int32_le st.mem a (Int64.to_int32 v)
  | Reg.Q ->
    let a = check_addr st addr 8 in
    mark_dirty st a 8;
    Bytes.set_int64_le st.mem a v

let read_operand st s = function
  | Instr.Imm i -> Int64.logand i (mask_of_size s)
  | Instr.Reg r -> read_gpr st r s
  | Instr.Mem m -> read_mem st (effective_address st m) s

let write_operand st s v = function
  | Instr.Imm _ -> trap "write to immediate"
  | Instr.Reg r -> write_gpr st r s v
  | Instr.Mem m -> write_mem st (effective_address st m) s v

(* ------------------------------------------------------------------ *)
(* Flags.                                                              *)
(* ------------------------------------------------------------------ *)

let set_flags_logic st s res =
  let res = Int64.logand res (mask_of_size s) in
  st.zf <- Int64.equal res 0L;
  st.sf <- Int64.compare (sign_extend res s) 0L < 0;
  st.cf <- false;
  st.off <- false

let sign_bit v s = Int64.compare (sign_extend v s) 0L < 0

let set_flags_add st s a b res =
  let m = mask_of_size s in
  let a = Int64.logand a m and b = Int64.logand b m in
  let res = Int64.logand res m in
  st.zf <- Int64.equal res 0L;
  st.sf <- sign_bit res s;
  (* carry: unsigned result wrapped *)
  st.cf <- Int64.unsigned_compare res a < 0 || (Int64.unsigned_compare res b < 0);
  st.off <- sign_bit a s = sign_bit b s && sign_bit res s <> sign_bit a s

let set_flags_sub st s a b res =
  let m = mask_of_size s in
  let a = Int64.logand a m and b = Int64.logand b m in
  let res = Int64.logand res m in
  st.zf <- Int64.equal res 0L;
  st.sf <- sign_bit res s;
  st.cf <- Int64.unsigned_compare a b < 0;
  st.off <- sign_bit a s <> sign_bit b s && sign_bit res s <> sign_bit a s

let eval_cond st c = Cond.eval c ~zf:st.zf ~sf:st.sf ~cf:st.cf ~of_:st.off

(* ------------------------------------------------------------------ *)
(* Stack helpers.                                                      *)
(* ------------------------------------------------------------------ *)

let rsp_i = Reg.gpr_index Reg.RSP

let push st v =
  let sp = Int64.sub st.gpr.{rsp_i} 8L in
  st.gpr.{rsp_i} <- sp;
  write_mem st sp Reg.Q v

let pop st =
  let sp = st.gpr.{rsp_i} in
  let v = read_mem st sp Reg.Q in
  st.gpr.{rsp_i} <- Int64.add sp 8L;
  v

(* ------------------------------------------------------------------ *)
(* One execution step.                                                 *)
(* ------------------------------------------------------------------ *)

let simd_lane st x lane = st.simd.{(x * 8) + lane}

let set_simd_lane st x lane v = st.simd.{(x * 8) + lane} <- v

let exec_alu st op s src dst =
  let a = read_operand st s dst and b = read_operand st s src in
  let res =
    match op with
    | Instr.Add -> Int64.add a b
    | Instr.Sub -> Int64.sub a b
    | Instr.Imul -> Int64.mul (sign_extend a s) (sign_extend b s)
    | Instr.And -> Int64.logand a b
    | Instr.Or -> Int64.logor a b
    | Instr.Xor -> Int64.logxor a b
  in
  (match op with
  | Instr.Add -> set_flags_add st s a b res
  | Instr.Sub -> set_flags_sub st s a b res
  | Instr.Imul | Instr.And | Instr.Or | Instr.Xor -> set_flags_logic st s res);
  write_operand st s res dst

let exec_shift st k s amt dst =
  let a = read_operand st s dst in
  let n =
    match amt with
    | Instr.Amt_imm n -> n
    | Instr.Amt_cl -> Int64.to_int (read_gpr st Reg.RCX Reg.B)
  in
  let n = n land (if s = Reg.Q then 63 else 31) in
  let res =
    match k with
    | Instr.Shl -> Int64.shift_left a n
    | Instr.Sar -> Int64.shift_right (sign_extend a s) n
    | Instr.Shr -> Int64.shift_right_logical (Int64.logand a (mask_of_size s)) n
  in
  set_flags_logic st s res;
  write_operand st s res dst

let step (img : image) (st : state) =
  let ip = st.ip in
  let ins = img.code.(ip) in
  st.cycles <- st.cycles +. img.costs.(ip);
  st.steps <- st.steps + 1;
  st.ip <- ip + 1;
  (match ins.op with
  | Instr.Mov (s, src, dst) -> write_operand st s (read_operand st s src) dst
  | Instr.Movslq (src, r) ->
    write_gpr st r Reg.Q (sign_extend (read_operand st Reg.D src) Reg.D)
  | Instr.Movzbq (src, r) -> write_gpr st r Reg.Q (read_operand st Reg.B src)
  | Instr.Lea (m, r) -> write_gpr st r Reg.Q (effective_address st m)
  | Instr.Alu (op, s, src, dst) -> exec_alu st op s src dst
  | Instr.Shift (k, s, amt, dst) -> exec_shift st k s amt dst
  | Instr.Neg (s, dst) ->
    let a = read_operand st s dst in
    let res = Int64.neg a in
    set_flags_sub st s 0L a res;
    write_operand st s res dst
  | Instr.Not (s, dst) ->
    write_operand st s (Int64.lognot (read_operand st s dst)) dst
  | Instr.Cmp (s, src, dst) ->
    let a = read_operand st s dst and b = read_operand st s src in
    set_flags_sub st s a b (Int64.sub a b)
  | Instr.Test (s, src, dst) ->
    let a = read_operand st s dst and b = read_operand st s src in
    set_flags_logic st s (Int64.logand a b)
  | Instr.Set (c, dst) ->
    write_operand st Reg.B (if eval_cond st c then 1L else 0L) dst
  | Instr.Jmp _ -> (
    match img.links.(ip) with
    | L_target t -> st.ip <- t
    | L_detect -> raise (Halt Detected)
    | _ -> trap "bad jmp link")
  | Instr.Jcc (c, _) ->
    if eval_cond st c then (
      match img.links.(ip) with
      | L_target t -> st.ip <- t
      | L_detect -> raise (Halt Detected)
      | _ -> trap "bad jcc link")
  | Instr.Call _ -> (
    match img.links.(ip) with
    | L_call entry ->
      push st (Int64.of_int st.ip);
      st.ip <- entry
    | L_print -> st.out_rev <- st.gpr.{Reg.gpr_index Reg.RDI} :: st.out_rev
    | L_detect -> raise (Halt Detected)
    | _ -> trap "bad call link")
  | Instr.Ret ->
    let ra = Int64.to_int (pop st) in
    if ra = img.halt_ip then raise (Halt (Exit (output st)))
    else if ra < 0 || ra >= Array.length img.code then
      trap "wild return to %d" ra
    else st.ip <- ra
  | Instr.Push src -> push st (read_operand st Reg.Q src)
  | Instr.Pop r -> write_gpr st r Reg.Q (pop st)
  | Instr.Cqto ->
    let a = st.gpr.{Reg.gpr_index Reg.RAX} in
    st.gpr.{Reg.gpr_index Reg.RDX} <- Int64.shift_right a 63
  | Instr.Idiv (s, src) ->
    if s <> Reg.Q then trap "idiv: only 64-bit division is supported";
    let d = read_operand st s src in
    if Int64.equal d 0L then trap "divide by zero";
    let rax = st.gpr.{Reg.gpr_index Reg.RAX} in
    let rdx = st.gpr.{Reg.gpr_index Reg.RDX} in
    (* The backend always sign-extends with cqto first; anything else
       denotes a corrupted RDX and raises the divide-error trap, as the
       quotient would not fit in 64 bits. *)
    if not (Int64.equal rdx (Int64.shift_right rax 63)) then
      trap "divide overflow"
    else begin
      st.gpr.{Reg.gpr_index Reg.RAX} <- Int64.div rax d;
      st.gpr.{Reg.gpr_index Reg.RDX} <- Int64.rem rax d
    end
  | Instr.MovQ_to_xmm (src, x) ->
    set_simd_lane st x 0 (read_operand st Reg.Q src);
    set_simd_lane st x 1 0L
  | Instr.MovQ_from_xmm (x, r) -> write_gpr st r Reg.Q (simd_lane st x 0)
  | Instr.Pinsrq (lane, src, x) ->
    let v =
      match src with
      | Instr.Psrc_reg r -> read_gpr st r Reg.Q
      | Instr.Psrc_mem m -> read_mem st (effective_address st m) Reg.Q
    in
    set_simd_lane st x lane v
  | Instr.Pextrq (lane, x, r) -> write_gpr st r Reg.Q (simd_lane st x lane)
  | Instr.Vinserti128 (half, s, a, d) ->
    let lo0, lo1 =
      if half = 0 then (simd_lane st s 0, simd_lane st s 1)
      else (simd_lane st a 0, simd_lane st a 1)
    in
    let hi0, hi1 =
      if half = 1 then (simd_lane st s 0, simd_lane st s 1)
      else (simd_lane st a 2, simd_lane st a 3)
    in
    set_simd_lane st d 0 lo0;
    set_simd_lane st d 1 lo1;
    set_simd_lane st d 2 hi0;
    set_simd_lane st d 3 hi1
  | Instr.Vpxor (a, b, d) ->
    for lane = 0 to 3 do
      set_simd_lane st d lane
        (Int64.logxor (simd_lane st a lane) (simd_lane st b lane))
    done
  | Instr.Vptest (a, b) ->
    let and_zero = ref true and andn_zero = ref true in
    for lane = 0 to 3 do
      let va = simd_lane st a lane and vb = simd_lane st b lane in
      if not (Int64.equal (Int64.logand vb va) 0L) then and_zero := false;
      if not (Int64.equal (Int64.logand vb (Int64.lognot va)) 0L) then
        andn_zero := false
    done;
    st.zf <- !and_zero;
    st.cf <- !andn_zero;
    st.sf <- false;
    st.off <- false
  | Instr.Vinserti64x4 (half, src, a, d) ->
    (* read everything first: src/a may alias d *)
    let src_lanes = Array.init 4 (simd_lane st src) in
    let a_lanes = Array.init 8 (simd_lane st a) in
    for lane = 0 to 7 do
      let v =
        if half = 0 && lane < 4 then src_lanes.(lane)
        else if half = 1 && lane >= 4 then src_lanes.(lane - 4)
        else a_lanes.(lane)
      in
      set_simd_lane st d lane v
    done
  | Instr.Vpxorq512 (a, b, d) ->
    for lane = 0 to 7 do
      set_simd_lane st d lane
        (Int64.logxor (simd_lane st a lane) (simd_lane st b lane))
    done
  | Instr.Vptestmq512 (a, b) ->
    let and_zero = ref true and andn_zero = ref true in
    for lane = 0 to 7 do
      let va = simd_lane st a lane and vb = simd_lane st b lane in
      if not (Int64.equal (Int64.logand vb va) 0L) then and_zero := false;
      if not (Int64.equal (Int64.logand vb (Int64.lognot va)) 0L) then
        andn_zero := false
    done;
    st.zf <- !and_zero;
    st.cf <- !andn_zero;
    st.sf <- false;
    st.off <- false);
  ip

(* ------------------------------------------------------------------ *)
(* Fault-injection mutators: flip one bit of a written destination.    *)
(* ------------------------------------------------------------------ *)

let flip_gpr st r s ~bit =
  let bit = bit mod Reg.size_bits s in
  let i = Reg.gpr_index r in
  st.gpr.{i} <- Int64.logxor st.gpr.{i} (Int64.shift_left 1L bit)

let flip_simd_lane st x ~lane ~bit =
  let bit = bit land 63 in
  let i = (x * 8) + lane in
  st.simd.{i} <- Int64.logxor st.simd.{i} (Int64.shift_left 1L bit)

let flip_flag st = function
  | Cond.ZF -> st.zf <- not st.zf
  | Cond.SF -> st.sf <- not st.sf
  | Cond.CF -> st.cf <- not st.cf
  | Cond.OF -> st.off <- not st.off

(* ------------------------------------------------------------------ *)
(* Runner.                                                             *)
(* ------------------------------------------------------------------ *)

let default_fuel = 50_000_000

(* The two run loops are split so the no-observer case pays neither the
   option branch nor the observer indirection per retired instruction;
   {!run} dispatches on [on_step] exactly once. *)
let run_unobserved ~fuel (img : image) (st : state) =
  let len = Array.length img.code in
  try
    while st.steps < fuel do
      if st.ip >= len || st.ip < 0 then trap "control reached 0x%x" st.ip;
      ignore (step img st)
    done;
    Timeout
  with
  | Halt o -> o
  | Trap msg -> Crash msg

let run_observed ~fuel ~f (img : image) (st : state) =
  let len = Array.length img.code in
  try
    while st.steps < fuel do
      if st.ip >= len || st.ip < 0 then trap "control reached 0x%x" st.ip;
      let ip0 = st.ip in
      (match step img st with
      | idx -> f st idx
      | exception Halt o ->
        f st ip0;
        raise (Halt o))
    done;
    Timeout
  with
  | Halt o -> o
  | Trap msg -> Crash msg

(* Run to completion.  [on_step] receives the state and the static index
   of the instruction that just retired (its destinations are in
   [img.dests]); mutations it performs are visible to the next step.
   The halting instruction is observed too (it retired: its steps and
   cycles are accounted); halting instructions define no injectable
   destinations, so fault-injection sampling is unaffected. *)
let run ?(fuel = default_fuel) ?on_step (img : image) (st : state) =
  match on_step with
  | None -> run_unobserved ~fuel img st
  | Some f -> run_observed ~fuel ~f img st

(* Convenience wrapper: load-free execution of an image from scratch. *)
let run_fresh ?fuel ?on_step img =
  let st = fresh_state img in
  let outcome = run ?fuel ?on_step img st in
  (outcome, st)

(* Golden (fault-free) execution summary used by campaigns and benches. *)
type golden = {
  outcome : outcome;
  dyn_instructions : int;
  cycles : float;
}

let golden ?fuel img =
  let outcome, st = run_fresh ?fuel img in
  { outcome; dyn_instructions = st.steps; cycles = st.cycles }
