(* Pre-decoded threaded dispatch.

   [Machine.step] re-matches operand constructors, re-resolves effective
   addresses and re-reads link tables on every retired instruction.  This
   module lowers an {!Machine.image} once into a flat array of
   resolved-operand closures — one thunk per static index, each doing the
   exact accounting preamble ([cycles]/[steps]/[ip]) followed by a body
   specialized at decode time — and drives them from three loops:

   - {!exec}: the unobserved fast path (golden walks, checkpoint suffix
     replays, untraced campaign samples).  No observer branch, no operand
     matching, and the hottest static pairs run as fused
     superinstructions.
   - {!exec_observed}: the observed path.  Identical semantics to
     [Machine.run ~on_step] — per-step fault injection, flight recorder,
     propagation lockstep and {!Snapshot} dirty-page tracking all see the
     exact retirement stream, so fusion is bypassed here.
   - {!step1}: a single pre-decoded step, for loops that need to stop at
     exact step or site boundaries (checkpoint capture walks, prefix
     replays to the injection site).

   Two representation choices make the specialized thunks allocation-free
   (the legacy loop boxes an [Int64] result and a [float] cycle counter
   on nearly every step):

   - Register files are int64 bigarrays ({!Machine.regfile}), so register
     reads and writes compile to unboxed loads/stores with no GC write
     barrier.  Inside a single thunk body the whole dataflow — operand
     loads, ALU, flag predicates, the store — stays in machine registers;
     int64 comparisons ([=], [<], [Int64.equal], [Int64.compare]) are
     specialized by the compiler and never box.
   - Cycles accumulate into an unboxed one-field float record owned by
     the decoded program ([t.cyc]) rather than the boxed
     [state.cycles] field; every entry point seeds it from [state.cycles]
     and writes it back on exit (and around every observer call), so the
     architectural field holds the bit-identical float sum whenever
     anyone can look.

   Superinstruction fusion is a pure dispatch optimization: a fused thunk
   at index [i] executes instructions [i] and [i+1] with per-instruction
   accounting and a fuel check between the two, so steps, cycles, traps
   and timeouts land bit-identically to single-step execution.  Because
   dispatch stays per-index, control entering the middle of a pair (a
   corrupted return, a jump) simply runs the standalone thunk at [i+1].
   A decode-time pattern table picks the pairs; fusion is bypassed when
   the second element is a join point (jump target, callee entry, the
   instruction after a call, the program entry) or a caller-supplied
   [avoid] site (the injector passes its eligible-site mask so a prefix
   stop never lands mid-pair).

   Everything is proven bit-identical to the legacy loop by the engine
   identity suites; [enabled := false] routes every entry point back
   through [Machine.step]/[Machine.run] (and replays the fused-step
   accounting over the retirement stream) so the two dispatchers stay
   directly comparable. *)

open Ferrum_asm

(* Unboxed register-file access: these compile to direct loads/stores on
   the bigarray data pointer.  Indices are decode-time constants in
   [0, 15] (GPR) or [0, 127] (SIMD lanes), so the unchecked variants are
   safe. *)
external bget : Machine.regfile -> int -> int64 = "%caml_ba_unsafe_ref_1"

external bset : Machine.regfile -> int -> int64 -> unit
  = "%caml_ba_unsafe_set_1"

(* Unchecked byte loads/stores, used only after an inline replica of
   [Machine.check_addr] has validated the access (the checked/unchecked
   variants agree on every address the check admits).  Native-endian:
   the specialized memory arms are built only on little-endian hosts
   (x86 order); big-endian hosts fall back to the generic bodies, which
   go through [Machine.read_mem]/[write_mem]. *)
external b_get64u : bytes -> int -> int64 = "%caml_bytes_get64u"

external b_set64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

external b_get32u : bytes -> int -> int32 = "%caml_bytes_get32u"

let little_endian = not Sys.big_endian

(* Unboxed cycle accumulator: a record whose fields are all [float] is
   stored flat, so [cyc.fv <- cyc.fv +. cost] neither allocates nor
   takes the write barrier (unlike the boxed [state.cycles] field of the
   mixed-field [Machine.state]). *)
type facc = { mutable fv : float }

type t = {
  img : Machine.image;
  thunks : (Machine.state -> unit) array; (* standalone, one per index *)
  fused : (Machine.state -> unit) array; (* pair thunk at fused starts *)
  fused_name : string array; (* pattern name at fused starts, else "" *)
  n_fused : int; (* number of fused pair starts *)
  pattern_counts : (string * int) list; (* per-pattern static pair count *)
  fuel : int ref; (* fuel bound of the current {!exec} run *)
  cyc : facc; (* cycle accumulator the thunks write *)
}

(* Raised by a fused thunk when fuel runs out between its two halves. *)
exception Fuel

(* Kill switch: [false] routes every entry point through the legacy
   [Machine.step]/[Machine.run] loop.  The identity suites and the bench
   baseline column use it to compare the two dispatchers byte-for-byte. *)
let enabled = ref true

(* ------------------------------------------------------------------ *)
(* Process-wide dispatch counters (per worker after a fork).           *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_decodes : int;
  mutable c_fast_steps : int; (* steps retired by {!exec} *)
  mutable c_fused_steps : int; (* subset retired as fused pairs *)
}

let ctr = { c_decodes = 0; c_fast_steps = 0; c_fused_steps = 0 }

let reset_counters () =
  ctr.c_decodes <- 0;
  ctr.c_fast_steps <- 0;
  ctr.c_fused_steps <- 0

let decodes () = ctr.c_decodes

let fast_steps () = ctr.c_fast_steps

let fused_steps () = ctr.c_fused_steps

(* ------------------------------------------------------------------ *)
(* Operand specialization (generic closures, for the composed bodies). *)
(* ------------------------------------------------------------------ *)

(* Effective address with base/index/disp resolved at decode time. *)
let mk_ea (m : Instr.mem) : Machine.state -> int64 =
  let disp = Int64.of_int m.Instr.disp in
  match (m.Instr.base, m.Instr.index) with
  | None, None -> fun _ -> disp
  | Some b, None ->
    let bi = Reg.gpr_index b in
    if m.Instr.disp = 0 then fun st -> bget st.Machine.gpr bi
    else fun st -> Int64.add (bget st.Machine.gpr bi) disp
  | None, Some x ->
    let xi = Reg.gpr_index x in
    let sc = Int64.of_int m.Instr.scale in
    fun st -> Int64.add (Int64.mul (bget st.Machine.gpr xi) sc) disp
  | Some b, Some x ->
    let bi = Reg.gpr_index b and xi = Reg.gpr_index x in
    let sc = Int64.of_int m.Instr.scale in
    fun st ->
      Int64.add
        (Int64.add (bget st.Machine.gpr bi)
           (Int64.mul (bget st.Machine.gpr xi) sc))
        disp

(* Decode-time encoding of an effective address as plain scalars, for
   the specialized arms: base/index register slots ([-1] = absent), the
   scale and displacement as int64.  The arms expand the same
   base + index*scale + disp sum inline, so the address never crosses a
   closure boundary (crossing would box it). *)
let addr_parts (m : Instr.mem) =
  ( (match m.Instr.base with Some b -> Reg.gpr_index b | None -> -1),
    (match m.Instr.index with Some x -> Reg.gpr_index x | None -> -1),
    Int64.of_int m.Instr.scale,
    Int64.of_int m.Instr.disp )

let mk_read s (o : Instr.operand) : Machine.state -> int64 =
  match o with
  | Instr.Imm i ->
    let v = Int64.logand i (Machine.mask_of_size s) in
    fun _ -> v
  | Instr.Reg r -> (
    let i = Reg.gpr_index r in
    match s with
    | Reg.Q -> fun st -> bget st.Machine.gpr i
    | _ ->
      let m = Machine.mask_of_size s in
      fun st -> Int64.logand (bget st.Machine.gpr i) m)
  | Instr.Mem m ->
    let ea = mk_ea m in
    fun st -> Machine.read_mem st (ea st) s

let mk_write_gpr s r : Machine.state -> int64 -> unit =
  let i = Reg.gpr_index r in
  match s with
  | Reg.Q -> fun st v -> bset st.Machine.gpr i v
  | Reg.D -> fun st v -> bset st.Machine.gpr i (Int64.logand v 0xFFFFFFFFL)
  | Reg.W ->
    fun st v ->
      bset st.Machine.gpr i
        (Int64.logor
           (Int64.logand (bget st.Machine.gpr i) (Int64.lognot 0xFFFFL))
           (Int64.logand v 0xFFFFL))
  | Reg.B ->
    fun st v ->
      bset st.Machine.gpr i
        (Int64.logor
           (Int64.logand (bget st.Machine.gpr i) (Int64.lognot 0xFFL))
           (Int64.logand v 0xFFL))

let mk_write s (o : Instr.operand) : Machine.state -> int64 -> unit =
  match o with
  | Instr.Imm _ -> fun _ _ -> Machine.trap "write to immediate"
  | Instr.Reg r -> mk_write_gpr s r
  | Instr.Mem m ->
    let ea = mk_ea m in
    fun st v -> Machine.write_mem st (ea st) s v

let mk_cond (c : Cond.t) : Machine.state -> bool =
  match c with
  | Cond.E -> fun st -> st.Machine.zf
  | Cond.NE -> fun st -> not st.Machine.zf
  | Cond.L -> fun st -> st.Machine.sf <> st.Machine.off
  | Cond.LE -> fun st -> st.Machine.zf || st.Machine.sf <> st.Machine.off
  | Cond.G -> fun st -> (not st.Machine.zf) && st.Machine.sf = st.Machine.off
  | Cond.GE -> fun st -> st.Machine.sf = st.Machine.off
  | Cond.B -> fun st -> st.Machine.cf
  | Cond.BE -> fun st -> st.Machine.cf || st.Machine.zf
  | Cond.A -> fun st -> (not st.Machine.cf) && not st.Machine.zf
  | Cond.AE -> fun st -> not st.Machine.cf
  | Cond.S -> fun st -> st.Machine.sf
  | Cond.NS -> fun st -> not st.Machine.sf

(* ------------------------------------------------------------------ *)
(* Thunk construction.                                                 *)
(* ------------------------------------------------------------------ *)

(* Fully-specialized thunks for the catalogue's hottest shapes: 64-bit
   moves and ALU (including memory operands, with the effective address
   and the bounds check expanded inline), the SIMD duplicate/check ops
   the protection transforms emit, resolved jumps, [lea], [set],
   immediate shifts.  Each arm textually inlines the accounting
   preamble, its operand dataflow and its flag predicates, so a retired
   instruction is one closure call with no allocation.  Everything else
   goes through the generic composed body below.  [None] means "no fast
   shape".

   Flag predicates are the [Reg.Q] specializations of
   [Machine.set_flags_*]: masking with [-1L] dropped, [sign_bit] a plain
   sign compare, and [Int64.unsigned_compare a b < 0] rewritten as the
   sign-flipped signed compare
   [Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int]
   (the stdlib function is not specialized by the compiler; the
   rewrite is). *)
let fast_thunk cyc ~cost ~next (img : Machine.image) ip (op : Instr.t) :
    (Machine.state -> unit) option =
  match op with
  | Instr.Mov (Reg.Q, src, Instr.Reg d) -> (
    let di = Reg.gpr_index d in
    match src with
    | Instr.Imm v ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          bset st.Machine.gpr di v)
    | Instr.Reg r ->
      let ri = Reg.gpr_index r in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          bset g di (bget g ri))
    | Instr.Mem m ->
      if not little_endian then None
      else
        let bi, xi, sc, disp = addr_parts m in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let addr =
              Int64.add
                (Int64.add
                   (if bi >= 0 then bget g bi else 0L)
                   (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
                disp
            in
            let ml = Bytes.length st.Machine.mem in
            let a = Int64.to_int addr in
            if addr < 0L || addr >= Int64.of_int ml || a + 8 > ml || a < 0
            then Machine.trap "memory access at 0x%Lx" addr;
            bset g di (b_get64u st.Machine.mem a)))
  | Instr.Mov (Reg.Q, src, Instr.Mem m) -> (
    if not little_endian then None
    else
      let bi, xi, sc, disp = addr_parts m in
      match src with
      | Instr.Imm v ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let addr =
              Int64.add
                (Int64.add
                   (if bi >= 0 then bget g bi else 0L)
                   (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
                disp
            in
            let ml = Bytes.length st.Machine.mem in
            let a = Int64.to_int addr in
            if addr < 0L || addr >= Int64.of_int ml || a + 8 > ml || a < 0
            then Machine.trap "memory access at 0x%Lx" addr;
            Machine.mark_dirty st a 8;
            b_set64u st.Machine.mem a v)
      | Instr.Reg r ->
        let ri = Reg.gpr_index r in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let addr =
              Int64.add
                (Int64.add
                   (if bi >= 0 then bget g bi else 0L)
                   (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
                disp
            in
            let ml = Bytes.length st.Machine.mem in
            let a = Int64.to_int addr in
            if addr < 0L || addr >= Int64.of_int ml || a + 8 > ml || a < 0
            then Machine.trap "memory access at 0x%Lx" addr;
            Machine.mark_dirty st a 8;
            b_set64u st.Machine.mem a (bget g ri))
      | Instr.Mem _ -> None)
  | Instr.Lea (m, d) ->
    let di = Reg.gpr_index d in
    let bi, xi, sc, disp = addr_parts m in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let g = st.Machine.gpr in
        bset g di
          (Int64.add
             (Int64.add
                (if bi >= 0 then bget g bi else 0L)
                (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
             disp))
  | Instr.Alu (aop, Reg.Q, src, Instr.Reg d) -> (
    let di = Reg.gpr_index d in
    (* [si >= 0] selects the register source, else the immediate [iv];
       the branch is decode-constant per thunk, so it predicts
       perfectly and keeps one body per ALU op. *)
    match
      match src with
      | Instr.Imm i -> Some (-1, i)
      | Instr.Reg r -> Some (Reg.gpr_index r, 0L)
      | Instr.Mem _ -> None
    with
    | None -> None
    | Some (si, iv) -> (
      match aop with
      | Instr.Add ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let a = bget g di in
            let b = if si >= 0 then bget g si else iv in
            let res = Int64.add a b in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <-
              Int64.logxor res Int64.min_int < Int64.logxor a Int64.min_int
              || Int64.logxor res Int64.min_int < Int64.logxor b Int64.min_int;
            st.Machine.off <- a < 0L = (b < 0L) && res < 0L <> (a < 0L);
            bset g di res)
      | Instr.Sub ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let a = bget g di in
            let b = if si >= 0 then bget g si else iv in
            let res = Int64.sub a b in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <-
              Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
            st.Machine.off <- a < 0L <> (b < 0L) && res < 0L <> (a < 0L);
            bset g di res)
      | Instr.Imul ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let a = bget g di in
            let b = if si >= 0 then bget g si else iv in
            let res = Int64.mul a b in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <- false;
            st.Machine.off <- false;
            bset g di res)
      | Instr.And ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let res =
              Int64.logand (bget g di) (if si >= 0 then bget g si else iv)
            in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <- false;
            st.Machine.off <- false;
            bset g di res)
      | Instr.Or ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let res =
              Int64.logor (bget g di) (if si >= 0 then bget g si else iv)
            in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <- false;
            st.Machine.off <- false;
            bset g di res)
      | Instr.Xor ->
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let res =
              Int64.logxor (bget g di) (if si >= 0 then bget g si else iv)
            in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <- false;
            st.Machine.off <- false;
            bset g di res)))
  | Instr.Cmp (Reg.Q, src, Instr.Reg d) -> (
    let di = Reg.gpr_index d in
    match src with
    | Instr.Imm iv ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let a = bget st.Machine.gpr di in
          let res = Int64.sub a iv in
          st.Machine.zf <- Int64.equal res 0L;
          st.Machine.sf <- res < 0L;
          st.Machine.cf <-
            Int64.logxor a Int64.min_int < Int64.logxor iv Int64.min_int;
          st.Machine.off <- a < 0L <> (iv < 0L) && res < 0L <> (a < 0L))
    | Instr.Reg r ->
      let ri = Reg.gpr_index r in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          let a = bget g di in
          let b = bget g ri in
          let res = Int64.sub a b in
          st.Machine.zf <- Int64.equal res 0L;
          st.Machine.sf <- res < 0L;
          st.Machine.cf <-
            Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
          st.Machine.off <- a < 0L <> (b < 0L) && res < 0L <> (a < 0L))
    | Instr.Mem m ->
      if not little_endian then None
      else
        let bi, xi, sc, disp = addr_parts m in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let a = bget g di in
            let addr =
              Int64.add
                (Int64.add
                   (if bi >= 0 then bget g bi else 0L)
                   (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
                disp
            in
            let ml = Bytes.length st.Machine.mem in
            let ai = Int64.to_int addr in
            if addr < 0L || addr >= Int64.of_int ml || ai + 8 > ml || ai < 0
            then Machine.trap "memory access at 0x%Lx" addr;
            let b = b_get64u st.Machine.mem ai in
            let res = Int64.sub a b in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <-
              Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
            st.Machine.off <- a < 0L <> (b < 0L) && res < 0L <> (a < 0L)))
  | Instr.Test (Reg.Q, src, Instr.Reg d) -> (
    let di = Reg.gpr_index d in
    match
      match src with
      | Instr.Imm i -> Some (-1, i)
      | Instr.Reg r -> Some (Reg.gpr_index r, 0L)
      | Instr.Mem _ -> None
    with
    | None -> None
    | Some (si, iv) ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          let res =
            Int64.logand (bget g di) (if si >= 0 then bget g si else iv)
          in
          st.Machine.zf <- Int64.equal res 0L;
          st.Machine.sf <- res < 0L;
          st.Machine.cf <- false;
          st.Machine.off <- false))
  | Instr.Set (c, Instr.Reg d) ->
    let di = Reg.gpr_index d in
    let ev = mk_cond c in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let g = st.Machine.gpr in
        bset g di
          (Int64.logor
             (Int64.logand (bget g di) (Int64.lognot 0xFFL))
             (if ev st then 1L else 0L)))
  | Instr.Movslq (Instr.Reg r, d) ->
    let ri = Reg.gpr_index r and di = Reg.gpr_index d in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let g = st.Machine.gpr in
        bset g di
          (Int64.shift_right (Int64.shift_left (bget g ri) 32) 32))
  | Instr.Movslq (Instr.Mem m, d) ->
    if not little_endian then None
    else
      let di = Reg.gpr_index d in
      let bi, xi, sc, disp = addr_parts m in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          let addr =
            Int64.add
              (Int64.add
                 (if bi >= 0 then bget g bi else 0L)
                 (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
              disp
          in
          let ml = Bytes.length st.Machine.mem in
          let a = Int64.to_int addr in
          if addr < 0L || addr >= Int64.of_int ml || a + 4 > ml || a < 0 then
            Machine.trap "memory access at 0x%Lx" addr;
          bset g di (Int64.of_int32 (b_get32u st.Machine.mem a)))
  | Instr.Shift (k, Reg.Q, Instr.Amt_imm n, Instr.Reg d) -> (
    let di = Reg.gpr_index d in
    let n = n land 63 in
    match k with
    | Instr.Shl ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          let res = Int64.shift_left (bget g di) n in
          st.Machine.zf <- Int64.equal res 0L;
          st.Machine.sf <- res < 0L;
          st.Machine.cf <- false;
          st.Machine.off <- false;
          bset g di res)
    | Instr.Sar ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          let res = Int64.shift_right (bget g di) n in
          st.Machine.zf <- Int64.equal res 0L;
          st.Machine.sf <- res < 0L;
          st.Machine.cf <- false;
          st.Machine.off <- false;
          bset g di res)
    | Instr.Shr ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let g = st.Machine.gpr in
          let res = Int64.shift_right_logical (bget g di) n in
          st.Machine.zf <- Int64.equal res 0L;
          st.Machine.sf <- res < 0L;
          st.Machine.cf <- false;
          st.Machine.off <- false;
          bset g di res))
  | Instr.Jmp _ -> (
    match img.Machine.links.(ip) with
    | Machine.L_target t ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- t)
    | _ -> None)
  | Instr.Jcc (c, _) -> (
    match img.Machine.links.(ip) with
    | Machine.L_target t ->
      let ev = mk_cond c in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- (if ev st then t else next))
    | _ -> None)
  | Instr.MovQ_to_xmm (src, x) -> (
    let x8 = x * 8 in
    match src with
    | Instr.Imm v ->
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let s = st.Machine.simd in
          bset s x8 v;
          bset s (x8 + 1) 0L)
    | Instr.Reg r ->
      let ri = Reg.gpr_index r in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          let s = st.Machine.simd in
          bset s x8 (bget st.Machine.gpr ri);
          bset s (x8 + 1) 0L)
    | Instr.Mem m ->
      if not little_endian then None
      else
        let bi, xi, sc, disp = addr_parts m in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let addr =
              Int64.add
                (Int64.add
                   (if bi >= 0 then bget g bi else 0L)
                   (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
                disp
            in
            let ml = Bytes.length st.Machine.mem in
            let a = Int64.to_int addr in
            if addr < 0L || addr >= Int64.of_int ml || a + 8 > ml || a < 0
            then Machine.trap "memory access at 0x%Lx" addr;
            let s = st.Machine.simd in
            bset s x8 (b_get64u st.Machine.mem a);
            bset s (x8 + 1) 0L))
  | Instr.MovQ_from_xmm (x, r) ->
    let x8 = x * 8 and di = Reg.gpr_index r in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        bset st.Machine.gpr di (bget st.Machine.simd x8))
  | Instr.Pinsrq (lane, src, x) -> (
    let li = (x * 8) + lane in
    match src with
    | Instr.Psrc_reg r ->
      let ri = Reg.gpr_index r in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. cost;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- next;
          bset st.Machine.simd li (bget st.Machine.gpr ri))
    | Instr.Psrc_mem m ->
      if not little_endian then None
      else
        let bi, xi, sc, disp = addr_parts m in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. cost;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- next;
            let g = st.Machine.gpr in
            let addr =
              Int64.add
                (Int64.add
                   (if bi >= 0 then bget g bi else 0L)
                   (if xi >= 0 then Int64.mul (bget g xi) sc else 0L))
                disp
            in
            let ml = Bytes.length st.Machine.mem in
            let a = Int64.to_int addr in
            if addr < 0L || addr >= Int64.of_int ml || a + 8 > ml || a < 0
            then Machine.trap "memory access at 0x%Lx" addr;
            bset st.Machine.simd li (b_get64u st.Machine.mem a)))
  | Instr.Pextrq (lane, x, r) ->
    let li = (x * 8) + lane and di = Reg.gpr_index r in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        bset st.Machine.gpr di (bget st.Machine.simd li))
  | Instr.Vinserti128 (half, sx, ax, dx) ->
    (* The half selector is a decode-time constant, so the four source
       lanes are fixed slots; reads complete before any write, exactly
       like the interpreter (src/dst may alias). *)
    let s8 = sx * 8 and a8 = ax * 8 and d8 = dx * 8 in
    let l0 = if half = 0 then s8 else a8 in
    let l1 = l0 + 1 in
    let h0 = if half = 1 then s8 else a8 + 2 in
    let h1 = h0 + 1 in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let s = st.Machine.simd in
        let lo0 = bget s l0 in
        let lo1 = bget s l1 in
        let hi0 = bget s h0 in
        let hi1 = bget s h1 in
        bset s d8 lo0;
        bset s (d8 + 1) lo1;
        bset s (d8 + 2) hi0;
        bset s (d8 + 3) hi1)
  | Instr.Vpxor (ax, bx, dx) ->
    let a8 = ax * 8 and b8 = bx * 8 and d8 = dx * 8 in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let s = st.Machine.simd in
        (* lane-by-lane read-then-write, in lane order, like the
           interpreter's loop (visible if dst aliases a source) *)
        bset s d8 (Int64.logxor (bget s a8) (bget s b8));
        bset s (d8 + 1) (Int64.logxor (bget s (a8 + 1)) (bget s (b8 + 1)));
        bset s (d8 + 2) (Int64.logxor (bget s (a8 + 2)) (bget s (b8 + 2)));
        bset s (d8 + 3) (Int64.logxor (bget s (a8 + 3)) (bget s (b8 + 3))))
  | Instr.Vptest (ax, bx) ->
    let a8 = ax * 8 and b8 = bx * 8 in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let s = st.Machine.simd in
        let a0 = bget s a8
        and a1 = bget s (a8 + 1)
        and a2 = bget s (a8 + 2)
        and a3 = bget s (a8 + 3) in
        let b0 = bget s b8
        and b1 = bget s (b8 + 1)
        and b2 = bget s (b8 + 2)
        and b3 = bget s (b8 + 3) in
        let and_acc =
          Int64.logor
            (Int64.logor (Int64.logand b0 a0) (Int64.logand b1 a1))
            (Int64.logor (Int64.logand b2 a2) (Int64.logand b3 a3))
        in
        let andn_acc =
          Int64.logor
            (Int64.logor
               (Int64.logand b0 (Int64.lognot a0))
               (Int64.logand b1 (Int64.lognot a1)))
            (Int64.logor
               (Int64.logand b2 (Int64.lognot a2))
               (Int64.logand b3 (Int64.lognot a3)))
        in
        st.Machine.zf <- Int64.equal and_acc 0L;
        st.Machine.cf <- Int64.equal andn_acc 0L;
        st.Machine.sf <- false;
        st.Machine.off <- false)
  | Instr.Vpxorq512 (ax, bx, dx) ->
    let a8 = ax * 8 and b8 = bx * 8 and d8 = dx * 8 in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let s = st.Machine.simd in
        for lane = 0 to 7 do
          bset s (d8 + lane)
            (Int64.logxor (bget s (a8 + lane)) (bget s (b8 + lane)))
        done)
  | Instr.Vptestmq512 (ax, bx) ->
    let a8 = ax * 8 and b8 = bx * 8 in
    Some
      (fun st ->
        cyc.fv <- cyc.fv +. cost;
        st.Machine.steps <- st.Machine.steps + 1;
        st.Machine.ip <- next;
        let s = st.Machine.simd in
        let and_acc = ref 0L and andn_acc = ref 0L in
        for lane = 0 to 7 do
          let va = bget s (a8 + lane) and vb = bget s (b8 + lane) in
          and_acc := Int64.logor !and_acc (Int64.logand vb va);
          andn_acc := Int64.logor !andn_acc (Int64.logand vb (Int64.lognot va))
        done;
        st.Machine.zf <- Int64.equal !and_acc 0L;
        st.Machine.cf <- Int64.equal !andn_acc 0L;
        st.Machine.sf <- false;
        st.Machine.off <- false)
  | _ -> None

(* Generic body: operand closures resolved at decode time, evaluation
   order and trap messages textually mirrored from [Machine.step]. *)
let mk_body (img : Machine.image) ip (op : Instr.t) : Machine.state -> unit =
  match op with
  | Instr.Mov (s, src, dst) ->
    let rd = mk_read s src and wr = mk_write s dst in
    fun st ->
      let v = rd st in
      wr st v
  | Instr.Movslq (src, r) ->
    let rd = mk_read Reg.D src and wr = mk_write_gpr Reg.Q r in
    fun st -> wr st (Machine.sign_extend (rd st) Reg.D)
  | Instr.Movzbq (src, r) ->
    let rd = mk_read Reg.B src and wr = mk_write_gpr Reg.Q r in
    fun st -> wr st (rd st)
  | Instr.Lea (m, r) ->
    let ea = mk_ea m and wr = mk_write_gpr Reg.Q r in
    fun st -> wr st (ea st)
  | Instr.Alu (aop, s, src, dst) -> (
    let rda = mk_read s dst and rdb = mk_read s src in
    let wr = mk_write s dst in
    match aop with
    | Instr.Add ->
      fun st ->
        let a = rda st in
        let b = rdb st in
        let res = Int64.add a b in
        Machine.set_flags_add st s a b res;
        wr st res
    | Instr.Sub ->
      fun st ->
        let a = rda st in
        let b = rdb st in
        let res = Int64.sub a b in
        Machine.set_flags_sub st s a b res;
        wr st res
    | Instr.Imul ->
      fun st ->
        let a = rda st in
        let b = rdb st in
        let res =
          Int64.mul (Machine.sign_extend a s) (Machine.sign_extend b s)
        in
        Machine.set_flags_logic st s res;
        wr st res
    | Instr.And ->
      fun st ->
        let a = rda st in
        let b = rdb st in
        let res = Int64.logand a b in
        Machine.set_flags_logic st s res;
        wr st res
    | Instr.Or ->
      fun st ->
        let a = rda st in
        let b = rdb st in
        let res = Int64.logor a b in
        Machine.set_flags_logic st s res;
        wr st res
    | Instr.Xor ->
      fun st ->
        let a = rda st in
        let b = rdb st in
        let res = Int64.logxor a b in
        Machine.set_flags_logic st s res;
        wr st res)
  | Instr.Shift (k, s, amt, dst) ->
    let rda = mk_read s dst and wr = mk_write s dst in
    let amt_mask = if s = Reg.Q then 63 else 31 in
    let rdn =
      match amt with
      | Instr.Amt_imm n ->
        let n = n land amt_mask in
        fun _ -> n
      | Instr.Amt_cl ->
        fun (st : Machine.state) ->
          Int64.to_int (Machine.read_gpr st Reg.RCX Reg.B) land amt_mask
    in
    let shift =
      match k with
      | Instr.Shl -> fun a n -> Int64.shift_left a n
      | Instr.Sar -> fun a n -> Int64.shift_right (Machine.sign_extend a s) n
      | Instr.Shr ->
        let m = Machine.mask_of_size s in
        fun a n -> Int64.shift_right_logical (Int64.logand a m) n
    in
    fun st ->
      let a = rda st in
      let n = rdn st in
      let res = shift a n in
      Machine.set_flags_logic st s res;
      wr st res
  | Instr.Neg (s, dst) ->
    let rd = mk_read s dst and wr = mk_write s dst in
    fun st ->
      let a = rd st in
      let res = Int64.neg a in
      Machine.set_flags_sub st s 0L a res;
      wr st res
  | Instr.Not (s, dst) ->
    let rd = mk_read s dst and wr = mk_write s dst in
    fun st -> wr st (Int64.lognot (rd st))
  | Instr.Cmp (s, src, dst) ->
    let rda = mk_read s dst and rdb = mk_read s src in
    fun st ->
      let a = rda st in
      let b = rdb st in
      Machine.set_flags_sub st s a b (Int64.sub a b)
  | Instr.Test (s, src, dst) ->
    let rda = mk_read s dst and rdb = mk_read s src in
    fun st ->
      let a = rda st in
      let b = rdb st in
      Machine.set_flags_logic st s (Int64.logand a b)
  | Instr.Set (c, dst) ->
    let ev = mk_cond c and wr = mk_write Reg.B dst in
    fun st -> wr st (if ev st then 1L else 0L)
  | Instr.Jmp _ -> (
    match img.Machine.links.(ip) with
    | Machine.L_target t -> fun st -> st.Machine.ip <- t
    | Machine.L_detect -> fun _ -> raise (Machine.Halt Machine.Detected)
    | _ -> fun _ -> Machine.trap "bad jmp link")
  | Instr.Jcc (c, _) -> (
    let ev = mk_cond c in
    match img.Machine.links.(ip) with
    | Machine.L_target t -> fun st -> if ev st then st.Machine.ip <- t
    | Machine.L_detect ->
      fun st -> if ev st then raise (Machine.Halt Machine.Detected)
    | _ -> fun st -> if ev st then Machine.trap "bad jcc link")
  | Instr.Call _ -> (
    match img.Machine.links.(ip) with
    | Machine.L_call entry ->
      fun st ->
        Machine.push st (Int64.of_int st.Machine.ip);
        st.Machine.ip <- entry
    | Machine.L_print ->
      let rdi = Reg.gpr_index Reg.RDI in
      fun st ->
        st.Machine.out_rev <- bget st.Machine.gpr rdi :: st.Machine.out_rev
    | Machine.L_detect -> fun _ -> raise (Machine.Halt Machine.Detected)
    | _ -> fun _ -> Machine.trap "bad call link")
  | Instr.Ret ->
    let halt_ip = img.Machine.halt_ip in
    let len = Array.length img.Machine.code in
    fun st ->
      let ra = Int64.to_int (Machine.pop st) in
      if ra = halt_ip then
        raise (Machine.Halt (Machine.Exit (Machine.output st)))
      else if ra < 0 || ra >= len then Machine.trap "wild return to %d" ra
      else st.Machine.ip <- ra
  | Instr.Push src ->
    let rd = mk_read Reg.Q src in
    fun st -> Machine.push st (rd st)
  | Instr.Pop r ->
    let wr = mk_write_gpr Reg.Q r in
    fun st -> wr st (Machine.pop st)
  | Instr.Cqto ->
    let rax = Reg.gpr_index Reg.RAX and rdx = Reg.gpr_index Reg.RDX in
    fun st ->
      bset st.Machine.gpr rdx (Int64.shift_right (bget st.Machine.gpr rax) 63)
  | Instr.Idiv (s, src) ->
    if s <> Reg.Q then fun _ ->
      Machine.trap "idiv: only 64-bit division is supported"
    else
      let rd = mk_read Reg.Q src in
      let rax = Reg.gpr_index Reg.RAX and rdx_i = Reg.gpr_index Reg.RDX in
      fun st ->
        let d = rd st in
        if Int64.equal d 0L then Machine.trap "divide by zero";
        let a = bget st.Machine.gpr rax in
        let rdx = bget st.Machine.gpr rdx_i in
        if not (Int64.equal rdx (Int64.shift_right a 63)) then
          Machine.trap "divide overflow"
        else begin
          bset st.Machine.gpr rax (Int64.div a d);
          bset st.Machine.gpr rdx_i (Int64.rem a d)
        end
  | Instr.MovQ_to_xmm (src, x) ->
    let rd = mk_read Reg.Q src in
    fun st ->
      Machine.set_simd_lane st x 0 (rd st);
      Machine.set_simd_lane st x 1 0L
  | Instr.MovQ_from_xmm (x, r) ->
    let wr = mk_write_gpr Reg.Q r in
    fun st -> wr st (Machine.simd_lane st x 0)
  | Instr.Pinsrq (lane, src, x) ->
    let rd =
      match src with
      | Instr.Psrc_reg r ->
        let i = Reg.gpr_index r in
        fun (st : Machine.state) -> bget st.Machine.gpr i
      | Instr.Psrc_mem m ->
        let ea = mk_ea m in
        fun st -> Machine.read_mem st (ea st) Reg.Q
    in
    fun st -> Machine.set_simd_lane st x lane (rd st)
  | Instr.Pextrq (lane, x, r) ->
    let wr = mk_write_gpr Reg.Q r in
    fun st -> wr st (Machine.simd_lane st x lane)
  | Instr.Vinserti128 (half, s, a, d) ->
    fun st ->
      let lo0, lo1 =
        if half = 0 then (Machine.simd_lane st s 0, Machine.simd_lane st s 1)
        else (Machine.simd_lane st a 0, Machine.simd_lane st a 1)
      in
      let hi0, hi1 =
        if half = 1 then (Machine.simd_lane st s 0, Machine.simd_lane st s 1)
        else (Machine.simd_lane st a 2, Machine.simd_lane st a 3)
      in
      Machine.set_simd_lane st d 0 lo0;
      Machine.set_simd_lane st d 1 lo1;
      Machine.set_simd_lane st d 2 hi0;
      Machine.set_simd_lane st d 3 hi1
  | Instr.Vpxor (a, b, d) ->
    fun st ->
      for lane = 0 to 3 do
        Machine.set_simd_lane st d lane
          (Int64.logxor (Machine.simd_lane st a lane)
             (Machine.simd_lane st b lane))
      done
  | Instr.Vptest (a, b) ->
    fun st ->
      let and_zero = ref true and andn_zero = ref true in
      for lane = 0 to 3 do
        let va = Machine.simd_lane st a lane
        and vb = Machine.simd_lane st b lane in
        if not (Int64.equal (Int64.logand vb va) 0L) then and_zero := false;
        if not (Int64.equal (Int64.logand vb (Int64.lognot va)) 0L) then
          andn_zero := false
      done;
      st.Machine.zf <- !and_zero;
      st.Machine.cf <- !andn_zero;
      st.Machine.sf <- false;
      st.Machine.off <- false
  | Instr.Vinserti64x4 (half, src, a, d) ->
    fun st ->
      (* read everything first: src/a may alias d *)
      let src_lanes = Array.init 4 (Machine.simd_lane st src) in
      let a_lanes = Array.init 8 (Machine.simd_lane st a) in
      for lane = 0 to 7 do
        let v =
          if half = 0 && lane < 4 then src_lanes.(lane)
          else if half = 1 && lane >= 4 then src_lanes.(lane - 4)
          else a_lanes.(lane)
        in
        Machine.set_simd_lane st d lane v
      done
  | Instr.Vpxorq512 (a, b, d) ->
    fun st ->
      for lane = 0 to 7 do
        Machine.set_simd_lane st d lane
          (Int64.logxor (Machine.simd_lane st a lane)
             (Machine.simd_lane st b lane))
      done
  | Instr.Vptestmq512 (a, b) ->
    fun st ->
      let and_zero = ref true and andn_zero = ref true in
      for lane = 0 to 7 do
        let va = Machine.simd_lane st a lane
        and vb = Machine.simd_lane st b lane in
        if not (Int64.equal (Int64.logand vb va) 0L) then and_zero := false;
        if not (Int64.equal (Int64.logand vb (Int64.lognot va)) 0L) then
          andn_zero := false
      done;
      st.Machine.zf <- !and_zero;
      st.Machine.cf <- !andn_zero;
      st.Machine.sf <- false;
      st.Machine.off <- false

let mk_thunk cyc (img : Machine.image) ip : Machine.state -> unit =
  let cost = img.Machine.costs.(ip) in
  let next = ip + 1 in
  let op = img.Machine.code.(ip).Instr.op in
  match fast_thunk cyc ~cost ~next img ip op with
  | Some t -> t
  | None ->
    let body = mk_body img ip op in
    fun st ->
      cyc.fv <- cyc.fv +. cost;
      st.Machine.steps <- st.Machine.steps + 1;
      st.Machine.ip <- next;
      body st

(* ------------------------------------------------------------------ *)
(* Flattened superinstruction bodies.                                  *)
(* ------------------------------------------------------------------ *)

(* Build the flattened pair thunk for [ip] and [ip+1], or [None] when
   no specialized combination applies (the generic two-call wrapper is
   used instead).  Each half replays the exact legacy step: cycle cost,
   step count, [ip] update, then the body — so a trap or fuel timeout
   between the halves leaves the same architectural state the
   interpreter would. *)
let fuse_pair cyc (fuel : int ref) (fused : (Machine.state -> unit) array)
    len (img : Machine.image) ip : (Machine.state -> unit) option =
  let c1 = img.Machine.costs.(ip) and c2 = img.Machine.costs.(ip + 1) in
  let n1 = ip + 1 and n2 = ip + 2 in
  let op1 = img.Machine.code.(ip).Instr.op
  and op2 = img.Machine.code.(ip + 1).Instr.op in
  match (op1, op2) with
  | Instr.Vpxor (ax, bx, dx), Instr.Vptest (tx, ty) ->
      (* the duplicate-check sequence the transforms emit: xor the
         replica into a scratch register, then test it *)
      let a8 = ax * 8
      and b8 = bx * 8
      and d8 = dx * 8
      and t8 = tx * 8
      and u8 = ty * 8 in
      Some
        (fun st ->
          cyc.fv <- cyc.fv +. c1;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- n1;
          let s = st.Machine.simd in
          bset s d8 (Int64.logxor (bget s a8) (bget s b8));
          bset s (d8 + 1) (Int64.logxor (bget s (a8 + 1)) (bget s (b8 + 1)));
          bset s (d8 + 2) (Int64.logxor (bget s (a8 + 2)) (bget s (b8 + 2)));
          bset s (d8 + 3) (Int64.logxor (bget s (a8 + 3)) (bget s (b8 + 3)));
          if st.Machine.steps >= !fuel then raise Fuel;
          cyc.fv <- cyc.fv +. c2;
          st.Machine.steps <- st.Machine.steps + 1;
          st.Machine.ip <- n2;
          let a0 = bget s t8
          and a1 = bget s (t8 + 1)
          and a2 = bget s (t8 + 2)
          and a3 = bget s (t8 + 3) in
          let b0 = bget s u8
          and b1 = bget s (u8 + 1)
          and b2 = bget s (u8 + 2)
          and b3 = bget s (u8 + 3) in
          let and_acc =
            Int64.logor
              (Int64.logor (Int64.logand b0 a0) (Int64.logand b1 a1))
              (Int64.logor (Int64.logand b2 a2) (Int64.logand b3 a3))
          in
          let andn_acc =
            Int64.logor
              (Int64.logor
                 (Int64.logand b0 (Int64.lognot a0))
                 (Int64.logand b1 (Int64.lognot a1)))
              (Int64.logor
                 (Int64.logand b2 (Int64.lognot a2))
                 (Int64.logand b3 (Int64.lognot a3)))
          in
          st.Machine.zf <- Int64.equal and_acc 0L;
          st.Machine.cf <- Int64.equal andn_acc 0L;
          st.Machine.sf <- false;
          st.Machine.off <- false;
          ctr.c_fused_steps <- ctr.c_fused_steps + 2;
          if st.Machine.steps < !fuel && n2 < len then
            (Array.unsafe_get fused n2) st)
    | Instr.Vptest (ax, bx), Instr.Jcc (c, _) -> (
      match img.Machine.links.(ip + 1) with
      | Machine.L_target t ->
        (* detector branch: test the accumulated difference mask, then
           jump on the resulting ZF.  [ck] selects the condition read
           (decode-constant): 0 = E, 1 = NE, 2 = general. *)
        let a8 = ax * 8 and b8 = bx * 8 in
        let ck =
          match c with Cond.E -> 0 | Cond.NE -> 1 | _ -> 2
        in
        let ev = mk_cond c in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. c1;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- n1;
            let s = st.Machine.simd in
            let a0 = bget s a8
            and a1 = bget s (a8 + 1)
            and a2 = bget s (a8 + 2)
            and a3 = bget s (a8 + 3) in
            let b0 = bget s b8
            and b1 = bget s (b8 + 1)
            and b2 = bget s (b8 + 2)
            and b3 = bget s (b8 + 3) in
            let and_acc =
              Int64.logor
                (Int64.logor (Int64.logand b0 a0) (Int64.logand b1 a1))
                (Int64.logor (Int64.logand b2 a2) (Int64.logand b3 a3))
            in
            let andn_acc =
              Int64.logor
                (Int64.logor
                   (Int64.logand b0 (Int64.lognot a0))
                   (Int64.logand b1 (Int64.lognot a1)))
                (Int64.logor
                   (Int64.logand b2 (Int64.lognot a2))
                   (Int64.logand b3 (Int64.lognot a3)))
            in
            st.Machine.zf <- Int64.equal and_acc 0L;
            st.Machine.cf <- Int64.equal andn_acc 0L;
            st.Machine.sf <- false;
            st.Machine.off <- false;
            if st.Machine.steps >= !fuel then raise Fuel;
            cyc.fv <- cyc.fv +. c2;
            st.Machine.steps <- st.Machine.steps + 1;
            let taken =
              if ck = 0 then st.Machine.zf
              else if ck = 1 then not st.Machine.zf
              else ev st
            in
            st.Machine.ip <- (if taken then t else n2);
            ctr.c_fused_steps <- ctr.c_fused_steps + 2;
            let ip' = st.Machine.ip in
            if st.Machine.steps < !fuel && ip' >= 0 && ip' < len then
              (Array.unsafe_get fused ip') st)
      | _ -> None)
    | Instr.Cmp (Reg.Q, src, Instr.Reg d), Instr.Jcc (c, _) -> (
      match (img.Machine.links.(ip + 1), src) with
      | Machine.L_target t, (Instr.Imm _ | Instr.Reg _) ->
        let di = Reg.gpr_index d in
        let si, iv =
          match src with
          | Instr.Imm i -> (-1, i)
          | Instr.Reg r -> (Reg.gpr_index r, 0L)
          | Instr.Mem _ -> assert false
        in
        let ck =
          match c with Cond.E -> 0 | Cond.NE -> 1 | _ -> 2
        in
        let ev = mk_cond c in
        Some
          (fun st ->
            cyc.fv <- cyc.fv +. c1;
            st.Machine.steps <- st.Machine.steps + 1;
            st.Machine.ip <- n1;
            let g = st.Machine.gpr in
            let a = bget g di in
            let b = if si >= 0 then bget g si else iv in
            let res = Int64.sub a b in
            st.Machine.zf <- Int64.equal res 0L;
            st.Machine.sf <- res < 0L;
            st.Machine.cf <-
              Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
            st.Machine.off <- a < 0L <> (b < 0L) && res < 0L <> (a < 0L);
            if st.Machine.steps >= !fuel then raise Fuel;
            cyc.fv <- cyc.fv +. c2;
            st.Machine.steps <- st.Machine.steps + 1;
            let taken =
              if ck = 0 then st.Machine.zf
              else if ck = 1 then not st.Machine.zf
              else ev st
            in
            st.Machine.ip <- (if taken then t else n2);
            ctr.c_fused_steps <- ctr.c_fused_steps + 2;
            let ip' = st.Machine.ip in
            if st.Machine.steps < !fuel && ip' >= 0 && ip' < len then
              (Array.unsafe_get fused ip') st)
      | _ -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Superinstruction pattern table.                                     *)
(* ------------------------------------------------------------------ *)

(* A pair head must fall through unconditionally so the second half
   always executes when the first does. *)
let fall_through (op : Instr.t) =
  match op with
  | Instr.Jmp _ | Instr.Jcc _ | Instr.Call _ | Instr.Ret -> false
  | _ -> true

let is_flag_producer (op : Instr.t) =
  match op with
  | Instr.Cmp _ | Instr.Test _ | Instr.Vptest _ | Instr.Vptestmq512 _ -> true
  | _ -> false

let is_alu_like (op : Instr.t) =
  match op with
  | Instr.Alu _ | Instr.Cmp _ | Instr.Test _ | Instr.Shift _ | Instr.Neg _
  | Instr.Not _ ->
    true
  | _ -> false

(* SIMD shadow-stream producers: the duplicate half of the protection
   transforms' dup/check traffic. *)
let is_dup_op (op : Instr.t) =
  match op with
  | Instr.MovQ_to_xmm _ | Instr.Pinsrq _ -> true
  | _ -> false

type pattern = {
  p_name : string;
  p_match : Instr.ins -> Instr.ins -> bool;
}

(* Ordered: the first matching pattern names the pair.  The table
   follows the dynamic profile of the protected catalogue, which is
   dominated by duplicate/check traffic: "dup+dup" and "mov+dup" cover
   the back-to-back SIMD duplication the transforms emit after every
   protected value, "dup+check"/"check+check" the batched checking
   sequences, "cmp+jcc" the detector branch, "load+alu" a memory load
   feeding the next ALU op, and "lea+mov" address formation feeding a
   move. *)
let patterns =
  [ {
      p_name = "cmp+jcc";
      p_match =
        (fun a b ->
          is_flag_producer a.Instr.op
          && match b.Instr.op with Instr.Jcc _ -> true | _ -> false);
    };
    {
      p_name = "dup+check";
      p_match =
        (fun a b ->
          a.Instr.prov = Instr.Dup && b.Instr.prov = Instr.Check
          && fall_through b.Instr.op);
    };
    {
      p_name = "dup+dup";
      p_match = (fun a b -> is_dup_op a.Instr.op && is_dup_op b.Instr.op);
    };
    {
      p_name = "mov+dup";
      p_match =
        (fun a b ->
          (match a.Instr.op with Instr.Mov _ -> true | _ -> false)
          && is_dup_op b.Instr.op);
    };
    {
      p_name = "check+check";
      p_match =
        (fun a b ->
          a.Instr.prov = Instr.Check && b.Instr.prov = Instr.Check
          && fall_through a.Instr.op && fall_through b.Instr.op);
    };
    {
      p_name = "load+alu";
      p_match =
        (fun a b ->
          (match a.Instr.op with
          | Instr.Mov (_, Instr.Mem _, Instr.Reg _) -> true
          | _ -> false)
          && is_alu_like b.Instr.op);
    };
    {
      p_name = "alu+alu";
      p_match =
        (fun a b ->
          let reg_only (op : Instr.t) =
            match op with
            | Instr.Alu (_, _, (Instr.Reg _ | Instr.Imm _), Instr.Reg _)
            | Instr.Cmp (_, (Instr.Reg _ | Instr.Imm _), Instr.Reg _) ->
              true
            | _ -> false
          in
          reg_only a.Instr.op && reg_only b.Instr.op);
    };
    {
      p_name = "lea+mov";
      p_match =
        (fun a b ->
          (match a.Instr.op with Instr.Lea _ -> true | _ -> false)
          && match b.Instr.op with Instr.Mov _ -> true | _ -> false);
    };
    (* Catch-all: any remaining fall-through head pairs with its
       successor.  The named patterns above take display priority; this
       one keeps the dispatch win on the long tail of pair shapes. *)
    { p_name = "pair"; p_match = (fun _ _ -> true) };
  ]

(* ------------------------------------------------------------------ *)
(* Decoding.                                                           *)
(* ------------------------------------------------------------------ *)

let decode ?avoid (img : Machine.image) : t =
  let len = Array.length img.Machine.code in
  let cyc = { fv = 0.0 } in
  let thunks = Array.init len (mk_thunk cyc img) in
  (* Join points: indices where control can enter other than by falling
     through from the previous instruction.  Fusion is bypassed when the
     second half of a pair is one. *)
  let join = Array.make (max 1 len) false in
  if img.Machine.entry_ip < len then join.(img.Machine.entry_ip) <- true;
  Array.iteri
    (fun ip link ->
      (match link with
      | Machine.L_target t | Machine.L_call t -> if t < len then join.(t) <- true
      | _ -> ());
      match img.Machine.code.(ip).Instr.op with
      | Instr.Call _ -> if ip + 1 < len then join.(ip + 1) <- true
      | _ -> ())
    img.Machine.links;
  let fused = Array.make (max 1 len) (fun (_ : Machine.state) -> ()) in
  Array.blit thunks 0 fused 0 len;
  let fused_name = Array.make len "" in
  let n_fused = ref 0 in
  let counts = List.map (fun p -> (p.p_name, ref 0)) patterns in
  let fuel = ref max_int in
  for ip = 0 to len - 2 do
    let a = img.Machine.code.(ip) and b = img.Machine.code.(ip + 1) in
    if
      fall_through a.Instr.op
      && (not join.(ip + 1))
      && (match avoid with Some av -> not av.(ip + 1) | None -> true)
    then
      match List.find_opt (fun p -> p.p_match a b) patterns with
      | None -> ()
      | Some p ->
        fused_name.(ip) <- p.p_name;
        incr n_fused;
        incr (List.assoc p.p_name counts);
        (match fuse_pair cyc fuel fused len img ip with
        | Some flat -> fused.(ip) <- flat
        | None ->
          let t1 = thunks.(ip) and t2 = thunks.(ip + 1) in
          fused.(ip) <-
            (fun st ->
              t1 st;
              if st.Machine.steps >= !fuel then raise Fuel;
              t2 st;
              ctr.c_fused_steps <- ctr.c_fused_steps + 2;
              let ip' = st.Machine.ip in
              if st.Machine.steps < !fuel && ip' >= 0 && ip' < len then
                (Array.unsafe_get fused ip') st))
  done;
  ctr.c_decodes <- ctr.c_decodes + 1;
  {
    img;
    thunks;
    fused;
    fused_name;
    n_fused = !n_fused;
    pattern_counts = List.map (fun (n, r) -> (n, !r)) counts;
    fuel;
    cyc;
  }

(* Per-process decode cache keyed by physical identity of the image.
   Bounded so long-lived processes (the serve daemon) cannot retain an
   unbounded set of old programs; forked shard workers inherit the
   parent's cache for free. *)
let cache : (Machine.image * t) list ref = ref []

let cache_cap = 32

let get (img : Machine.image) : t =
  match List.find_opt (fun (k, _) -> k == img) !cache with
  | Some (_, p) -> p
  | None ->
    let p = decode img in
    let kept =
      if List.length !cache >= cache_cap then
        List.filteri (fun i _ -> i < cache_cap - 1) !cache
      else !cache
    in
    cache := (img, p) :: kept;
    p

(* ------------------------------------------------------------------ *)
(* Static accessors.                                                   *)
(* ------------------------------------------------------------------ *)

let length p = Array.length p.thunks

let image p = p.img

let fused_pairs p = p.n_fused

let pattern_counts p = p.pattern_counts

(* Pattern name when [ip] starts a fused pair, else [""]. *)
let fused_name p ip = p.fused_name.(ip)

let is_fused_start p ip = p.fused_name.(ip) <> ""

(* ------------------------------------------------------------------ *)
(* Execution loops.                                                    *)
(* ------------------------------------------------------------------ *)

(* Legacy loop with the fused-step accounting replayed over the
   retirement stream: [idx] then [idx+1] retiring back-to-back where
   [idx] starts a fused pair is exactly when the fast loop runs the
   pair thunk, so the counters (and the trace counters built from them)
   are byte-identical whichever dispatcher ran. *)
let exec_legacy ~fuel (p : t) (st : Machine.state) =
  let img = p.img in
  let len = Array.length img.Machine.code in
  let s0 = st.Machine.steps in
  let pending = ref (-1) in
  let note idx =
    if idx = !pending then begin
      ctr.c_fused_steps <- ctr.c_fused_steps + 2;
      pending := -1
    end
    else pending := (if p.fused_name.(idx) <> "" then idx + 1 else -1)
  in
  let outcome =
    try
      while st.Machine.steps < fuel do
        if st.Machine.ip >= len || st.Machine.ip < 0 then
          Machine.trap "control reached 0x%x" st.Machine.ip;
        note (Machine.step img st)
      done;
      Machine.Timeout
    with
    | Machine.Halt o -> o
    | Machine.Trap msg -> Machine.Crash msg
  in
  ctr.c_fast_steps <- ctr.c_fast_steps + (st.Machine.steps - s0);
  outcome

(* The unobserved fast path: threaded dispatch over the fused thunk
   array.  Bit-identical to [Machine.run] without an observer.  The
   cycle accumulator is seeded from the architectural field on entry
   and written back on every exit path, so [st.cycles] is exact (the
   same float additions in the same order) whenever the caller can
   observe it. *)
let exec ?(fuel = Machine.default_fuel) (p : t) (st : Machine.state) =
  if not !enabled then exec_legacy ~fuel p st
  else begin
    let s0 = st.Machine.steps in
    let len = Array.length p.thunks in
    let fused = p.fused in
    let cyc = p.cyc in
    p.fuel := fuel;
    cyc.fv <- st.Machine.cycles;
    let outcome =
      try
        while st.Machine.steps < fuel do
          let ip = st.Machine.ip in
          if ip >= len || ip < 0 then Machine.trap "control reached 0x%x" ip;
          (Array.unsafe_get fused ip) st
        done;
        Machine.Timeout
      with
      | Machine.Halt o -> o
      | Machine.Trap msg -> Machine.Crash msg
      | Fuel -> Machine.Timeout
      | e ->
        st.Machine.cycles <- cyc.fv;
        raise e
    in
    st.Machine.cycles <- cyc.fv;
    ctr.c_fast_steps <- ctr.c_fast_steps + (st.Machine.steps - s0);
    outcome
  end

(* One pre-decoded step; returns the retired static index like
   [Machine.step].  Never fused, so callers that stop at exact step or
   site boundaries (snapshot capture, prefix replay) stay exact.  The
   caller checks [st.ip] bounds, as with [Machine.step].  The cycle
   accumulator is bracketed around the thunk (reseeded before, written
   back after, including on [Halt]/[Trap]), which also makes nested
   use safe: a lockstep observer may run [step1] on the same decoded
   program from inside [exec_observed]. *)
let step1 (p : t) (st : Machine.state) =
  if not !enabled then Machine.step p.img st
  else begin
    let ip = st.Machine.ip in
    let cyc = p.cyc in
    cyc.fv <- st.Machine.cycles;
    (match (Array.unsafe_get p.thunks ip) st with
    | () -> st.Machine.cycles <- cyc.fv
    | exception e ->
      st.Machine.cycles <- cyc.fv;
      raise e);
    ip
  end

(* The observed path: same per-step observer contract as
   [Machine.run ~on_step] — the observer sees every retired instruction
   including the halting one, and its mutations are visible to the next
   step.  Fusion is bypassed so injection sites and lockstep replicas
   see the exact retirement stream.  The cycle accumulator is bracketed
   around every thunk so the observer reads an exact [st.cycles] and the
   bracket tolerates reentrant [step1] calls on the same program. *)
let exec_observed ?(fuel = Machine.default_fuel) ~on_step (p : t)
    (st : Machine.state) =
  if not !enabled then Machine.run ~fuel ~on_step p.img st
  else
    let len = Array.length p.thunks in
    let thunks = p.thunks in
    let cyc = p.cyc in
    try
      while st.Machine.steps < fuel do
        let ip0 = st.Machine.ip in
        if ip0 >= len || ip0 < 0 then
          Machine.trap "control reached 0x%x" ip0;
        cyc.fv <- st.Machine.cycles;
        (match (Array.unsafe_get thunks ip0) st with
        | () ->
          st.Machine.cycles <- cyc.fv;
          on_step st ip0
        | exception Machine.Halt o ->
          st.Machine.cycles <- cyc.fv;
          on_step st ip0;
          raise (Machine.Halt o)
        | exception e ->
          st.Machine.cycles <- cyc.fv;
          raise e)
      done;
      Machine.Timeout
    with
    | Machine.Halt o -> o
    | Machine.Trap msg -> Machine.Crash msg
