(** Deterministic x86-64 subset simulator.

    Executes flattened {!Ferrum_asm.Prog.t} programs over an
    architectural state — 16 GPRs, 16 SIMD registers of 8 64-bit lanes
    (ZMM width), the ZF/SF/CF/OF flags, and byte-addressable
    little-endian memory with the stack at the top.  Outcomes follow the
    fault-injection literature's classification; a per-step observer
    exposes each retired instruction so the injector can flip bits at
    write-back. *)

open Ferrum_asm

type outcome =
  | Exit of int64 list  (** normal exit; the observable output, in order *)
  | Detected  (** control reached [exit_function] or [__ferrum_detect] *)
  | Crash of string  (** memory trap, divide error, wild control transfer *)
  | Timeout  (** fuel exhausted *)

(** Equality up to crash messages. *)
val equal_outcome : outcome -> outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit

(** Pre-resolved control-flow target of an instruction. *)
type link =
  | L_none
  | L_target of int
  | L_call of int
  | L_detect
  | L_print

(** A loaded program: flattened code with resolved branches, per-index
    costs under the chosen model, and per-index injectable
    destinations. *)
type image = {
  code : Instr.ins array;
  links : link array;
  costs : float array;
  dests : Instr.dest list array;
  entry_ip : int;
  halt_ip : int;  (** sentinel return address of the entry function *)
  mem_size : int;
}

exception Trap of string

exception Halt of outcome

(** Flatten, validate and link a program.  Default memory size is 1 MiB;
    the stack starts at its top, global data sits near the bottom
    (see {!Ferrum_backend.Backend.global_base}). *)
val load : ?cost_model:Cost.model -> ?mem_size:int -> Prog.t -> image

(** {1 Dirty-page tracking}

    Memory is divided into [page_size]-byte pages; when tracking is
    attached to a state, every {!write_mem}-routed store logs the pages
    it touches.  {!Snapshot} uses the log to capture per-checkpoint
    memory deltas and to undo a run's writes incrementally instead of
    re-blitting the whole image. *)

val page_bits : int

(** [1 lsl page_bits] = 4096. *)
val page_size : int

(** Dirty-page log: a byte-per-page bitmap plus the list of dirty page
    numbers in first-touch order ([tr_pages.(0 .. tr_count-1)]). *)
type track = {
  tr_bits : Bytes.t;
  tr_pages : int array;
  mutable tr_count : int;
}

(** Register files are int64 bigarrays: element access compiles to
    unboxed loads and stores (no per-write allocation, no GC write
    barrier), which is what lets {!Predecode}'s specialized thunks run
    allocation-free.  Index with [r.{i}]. *)
type regfile = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Fresh zero-filled register file of [n] slots. *)
val make_regfile : int -> regfile

val copy_regfile : regfile -> regfile

(** [blit_regfile src dst] copies [src] over [dst] (equal dims). *)
val blit_regfile : regfile -> regfile -> unit

(** Plain-array snapshot, for tests and display code. *)
val dump_regfile : regfile -> int64 array

(** Architectural state.  [simd] is indexed [reg * 8 + lane]. *)
type state = {
  gpr : regfile;
  simd : regfile;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable off : bool;
  mem : Bytes.t;
  mutable ip : int;
  mutable cycles : float;
  mutable steps : int;
  mutable out_rev : int64 list;
  mutable track : track option;
}

(** Zeroed registers and memory, stack pointer initialised, the halt
    sentinel pushed.  Tracking is off ([track = None]). *)
val fresh_state : image -> state

(** Attach a dirty-page log to [state] (idempotent).  The pre-existing
    memory contents are considered clean. *)
val track_writes : state -> unit

(** Mark every tracked page clean.  No-op without tracking. *)
val clear_dirty : state -> unit

(** Record page [p] as dirty in a log (dedupes via the bitmap). *)
val mark_page : track -> int -> unit

(** Copy registers, flags, ip, cycles, steps and output — everything
    except memory — from [from] into the destination state. *)
val reset_regs : from:state -> state -> unit

(** Reset a pooled state to [pristine] (a never-executed
    {!fresh_state} of the same image) by blitting registers and the
    whole memory image; clears the dirty log.  Replaces per-run
    [fresh_state] allocation in sample loops. *)
val reset_state : pristine:state -> state -> unit

(** The output collected so far, oldest first. *)
val output : state -> int64 list

(** {1 Fault-injection mutators}

    Flip one bit of an architectural destination; used by
    {!Ferrum_faultsim} right after the targeted write-back. *)

val flip_gpr : state -> Reg.gpr -> Reg.size -> bit:int -> unit
val flip_simd_lane : state -> Reg.simd -> lane:int -> bit:int -> unit
val flip_flag : state -> Cond.flag -> unit

(** {1 Execution} *)

(** Resolve a memory operand's address against the current register
    file (used by the propagation tracer to locate store targets). *)
val effective_address : state -> Instr.mem -> int64

(** {1 Decoder support}

    The building blocks of {!step}, exposed so {!Predecode} can lower
    instructions into resolved-operand closures with the exact same
    masking, flag, trap and dirty-page behaviour. *)

(** Raise {!Trap} with a formatted message. *)
val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a

val mask_of_size : Reg.size -> int64
val sign_extend : int64 -> Reg.size -> int64
val read_gpr : state -> Reg.gpr -> Reg.size -> int64

(** Bounds-checked loads/stores; stores route through the dirty-page
    log when one is attached. *)
val read_mem : state -> int64 -> Reg.size -> int64

val write_mem : state -> int64 -> Reg.size -> int64 -> unit

(** [check_addr st addr bytes] validates an access of [bytes] bytes at
    [addr] and returns it as an int offset, trapping exactly like the
    interpreter on an out-of-range access. *)
val check_addr : state -> int64 -> int -> int

(** Mark the page(s) of an [n]-byte write at offset [a] dirty when a
    log is attached (inlined stores call this after their own bounds
    check). *)
val mark_dirty : state -> int -> int -> unit
val set_flags_logic : state -> Reg.size -> int64 -> unit
val set_flags_add : state -> Reg.size -> int64 -> int64 -> int64 -> unit
val set_flags_sub : state -> Reg.size -> int64 -> int64 -> int64 -> unit

(** Stack push/pop with x86 RSP adjustment. *)
val push : state -> int64 -> unit

val pop : state -> int64
val simd_lane : state -> Reg.simd -> int -> int64
val set_simd_lane : state -> Reg.simd -> int -> int64 -> unit

(** Execute exactly one instruction and return the static index of the
    instruction that retired.  Raises {!Halt} when the program ends and
    {!Trap} on a machine fault; callers driving a lockstep re-execution
    (e.g. {!Ferrum_telemetry.Propagation}) must handle both.  Does not
    check that [state.ip] is within the code array — {!run} does that
    before each step. *)
val step : image -> state -> int

val default_fuel : int

(** Run to halt, trap or fuel exhaustion.  [on_step] receives the state
    and the static index of the instruction that just retired (its
    destinations are in [image.dests]); mutations it performs are
    visible to the next step.  Every retired instruction is observed,
    including the one that halts the machine. *)
val run : ?fuel:int -> ?on_step:(state -> int -> unit) -> image -> state -> outcome

(** Run from a fresh state; returns the outcome and the final state. *)
val run_fresh :
  ?fuel:int -> ?on_step:(state -> int -> unit) -> image -> outcome * state

(** Fault-free execution summary used by campaigns and benches. *)
type golden = { outcome : outcome; dyn_instructions : int; cycles : float }

val golden : ?fuel:int -> image -> golden
