(** Execution flight recorder: a fixed-depth ring buffer of the last N
    retired instructions with their post-write-back destination values,
    fed by the simulator's [on_step] observer.  Dump it when a run ends
    in [Detected]/[Crash]/[Timeout] to see the instruction window that
    led to the event. *)

open Ferrum_asm

(** One written destination with its value right after write-back. *)
type write =
  | Wgpr of Reg.gpr * int64
  | Wsimd of Reg.simd * int * int64  (** register, lane, value *)
  | Wflags of bool * bool * bool * bool  (** ZF, SF, CF, OF *)

type entry = {
  step : int;  (** 1-based dynamic instruction number *)
  static_index : int;
  ins : Instr.ins;
  writes : write list;
}

type t

val default_depth : int

(** A recorder holding the last [depth] (default {!default_depth})
    entries.  Raises [Invalid_argument] on non-positive depths. *)
val create : ?depth:int -> unit -> t

(** Forget everything recorded so far. *)
val clear : t -> unit

(** Total entries ever recorded (≥ the number currently held). *)
val recorded : t -> int

(** The observer: pass as the simulator's [on_step] (or call from a
    composed observer). *)
val observe : t -> Machine.image -> Machine.state -> int -> unit

(** Entries currently held, oldest first; at most [depth]. *)
val entries : t -> entry list

val pp_write : Format.formatter -> write -> unit
val pp_entry : Format.formatter -> entry -> unit

(** The full window, oldest first, with a header stating how much
    history was dropped. *)
val pp : Format.formatter -> t -> unit
