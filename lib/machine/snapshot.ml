(* Golden-run checkpoints for fast fault injection.

   One golden walk per target captures the architectural state every
   [interval] dynamic instructions.  Registers, flags and scalars are
   copied outright (~1.2 KB); memory is captured as a *delta* — only the
   pages dirtied since the previous checkpoint, courtesy of the
   dirty-page log in {!Machine} — so a checkpoint costs proportional to
   the write working set, not the 1 MiB address space.

   Restoration is likewise incremental.  A {!slot} owns one pooled
   state; moving it from checkpoint [a] to checkpoint [c] rewrites only
   (1) pages the previous injection run dirtied and (2) pages whose
   canonical content differs between [a] and [c] (the union of the
   deltas strictly between them).  A per-page version index finds the
   latest checkpoint ≤ [c] holding each page in O(log #checkpoints); a
   generation-stamped dedup ensures each page is written at most once
   per restore.  No per-sample allocation occurs anywhere on this
   path. *)

let page_bits = Machine.page_bits

let page_size = Machine.page_size

type ckpt = {
  c_gpr : Machine.regfile;
  c_simd : Machine.regfile;
  c_zf : bool;
  c_sf : bool;
  c_cf : bool;
  c_off : bool;
  c_ip : int;
  c_cycles : float;
  c_steps : int;
  c_out_rev : int64 list;
  c_seen : int;
      (* eligible write-backs retired strictly before this point *)
  c_pages : int array; (* pages dirtied since the previous ckpt, sorted *)
  c_data : Bytes.t; (* c_pages.(i)'s contents at offset i * page_size *)
}

type cache = {
  img : Machine.image;
  pristine : Machine.state; (* never executed; checkpoint "-1" *)
  ckpts : ckpt array;
  versions : int array array;
      (* per page: ascending ckpt indices whose delta holds that page *)
  n_pages : int;
}

(* The last page may be short when [mem_size] is not a page multiple. *)
let page_len cache p =
  min page_size (cache.img.Machine.mem_size - (p lsl page_bits))

let capture (st : Machine.state) ~seen =
  let tr = Option.get st.Machine.track in
  let n = tr.Machine.tr_count in
  let pages = Array.sub tr.Machine.tr_pages 0 n in
  Array.sort compare pages;
  let mem_size = Bytes.length st.Machine.mem in
  let data = Bytes.create (n * page_size) in
  for i = 0 to n - 1 do
    let p = pages.(i) in
    let off = p lsl page_bits in
    let len = min page_size (mem_size - off) in
    Bytes.blit st.Machine.mem off data (i * page_size) len
  done;
  Machine.clear_dirty st;
  {
    c_gpr = Machine.copy_regfile st.Machine.gpr;
    c_simd = Machine.copy_regfile st.Machine.simd;
    c_zf = st.Machine.zf;
    c_sf = st.Machine.sf;
    c_cf = st.Machine.cf;
    c_off = st.Machine.off;
    c_ip = st.Machine.ip;
    c_cycles = st.Machine.cycles;
    c_steps = st.Machine.steps;
    c_out_rev = st.Machine.out_rev;
    c_seen = seen;
    c_pages = pages;
    c_data = data;
  }

exception Done

let build ?interval ~counted img =
  let n_pages = (img.Machine.mem_size + page_size - 1) lsr page_bits in
  let pristine = Machine.fresh_state img in
  let ckpts =
    match interval with
    | None -> [||]
    | Some k ->
      if k < 1 then invalid_arg "Snapshot.build: interval < 1";
      let st = Machine.fresh_state img in
      Machine.track_writes st;
      let pre = Predecode.get img in
      let acc = ref [] in
      let seen = ref 0 in
      let next = ref k in
      let len = Array.length img.Machine.code in
      (try
         while true do
           if st.Machine.ip < 0 || st.Machine.ip >= len then raise Done;
           if st.Machine.steps = !next then begin
             acc := capture st ~seen:!seen :: !acc;
             next := !next + k
           end;
           let idx = Predecode.step1 pre st in
           if counted idx then incr seen
         done
       with Machine.Halt _ | Machine.Trap _ | Done -> ());
      Array.of_list (List.rev !acc)
  in
  (* Per-page version index: ascending checkpoint indices whose delta
     carries the page. *)
  let counts = Array.make n_pages 0 in
  Array.iter
    (fun c -> Array.iter (fun p -> counts.(p) <- counts.(p) + 1) c.c_pages)
    ckpts;
  let versions = Array.map (fun n -> Array.make n 0) counts in
  let fill = Array.make n_pages 0 in
  Array.iteri
    (fun ci c ->
      Array.iter
        (fun p ->
          versions.(p).(fill.(p)) <- ci;
          fill.(p) <- fill.(p) + 1)
        c.c_pages)
    ckpts;
  { img; pristine; ckpts; versions; n_pages }

let ckpt_count cache = Array.length cache.ckpts

(* Greatest index [i] with [arr.(i) <= x]; -1 if none.  [arr] sorted. *)
let find_le arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo - 1

(* Position of [x] in sorted [arr]; the caller guarantees presence. *)
let find_pos arr x =
  let i = find_le arr x in
  assert (i >= 0 && arr.(i) = x);
  i

let select cache ~dyn_index =
  let ckpts = cache.ckpts in
  let lo = ref 0 and hi = ref (Array.length ckpts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ckpts.(mid).c_seen <= dyn_index then lo := mid + 1 else hi := mid
  done;
  !lo - 1

type slot = {
  cache : cache;
  st : Machine.state;
  mutable at : int; (* checkpoint the slot was last restored to; -1 = pristine *)
  stamp : int array; (* per page: generation of the last touch *)
  mutable gen : int;
}

let make_slot cache =
  let st = Machine.fresh_state cache.img in
  Machine.track_writes st;
  {
    cache;
    st;
    at = -1; (* a fresh state is bit-identical to [pristine] *)
    stamp = Array.make cache.n_pages 0;
    gen = 0;
  }

let state sl = sl.st

(* Write page [p]'s canonical contents at checkpoint [c] into the slot:
   the latest delta ≤ [c] carrying the page, else the pristine image. *)
let load_page sl ~c p =
  let cache = sl.cache in
  let len = page_len cache p in
  let off = p lsl page_bits in
  let v = if c < 0 then -1 else find_le cache.versions.(p) c in
  if v < 0 then
    Bytes.blit cache.pristine.Machine.mem off sl.st.Machine.mem off len
  else begin
    let ck = cache.ckpts.(cache.versions.(p).(v)) in
    let pos = find_pos ck.c_pages p in
    Bytes.blit ck.c_data (pos * page_size) sl.st.Machine.mem off len
  end

let load_regs sl c =
  let st = sl.st in
  if c < 0 then Machine.reset_regs ~from:sl.cache.pristine st
  else begin
    let ck = sl.cache.ckpts.(c) in
    Machine.blit_regfile ck.c_gpr st.Machine.gpr;
    Machine.blit_regfile ck.c_simd st.Machine.simd;
    st.Machine.zf <- ck.c_zf;
    st.Machine.sf <- ck.c_sf;
    st.Machine.cf <- ck.c_cf;
    st.Machine.off <- ck.c_off;
    st.Machine.ip <- ck.c_ip;
    st.Machine.cycles <- ck.c_cycles;
    st.Machine.steps <- ck.c_steps;
    st.Machine.out_rev <- ck.c_out_rev
  end

let restore_to sl c =
  sl.gen <- sl.gen + 1;
  let gen = sl.gen in
  let touch p =
    if sl.stamp.(p) <> gen then begin
      sl.stamp.(p) <- gen;
      load_page sl ~c p
    end
  in
  (* 1. Undo the previous injection run's writes. *)
  (match sl.st.Machine.track with
  | None -> ()
  | Some tr ->
    for i = 0 to tr.Machine.tr_count - 1 do
      touch tr.Machine.tr_pages.(i)
    done);
  Machine.clear_dirty sl.st;
  (* 2. Rewrite pages whose canonical content differs between the slot's
     current checkpoint and the target: the union of the deltas strictly
     after min(at, c) up to max(at, c) — symmetric, so both forward and
     backward moves work. *)
  let lo = min sl.at c and hi = max sl.at c in
  for ci = lo + 1 to hi do
    Array.iter touch sl.cache.ckpts.(ci).c_pages
  done;
  load_regs sl c;
  sl.at <- c

let reset sl = restore_to sl (-1)

let restore sl ~dyn_index =
  let c = select sl.cache ~dyn_index in
  restore_to sl c;
  if c < 0 then 0 else sl.cache.ckpts.(c).c_seen

(* Make [dst] bit-identical to [src].  Precondition: both slots were
   last restored to the same checkpoint, [dst] untouched since.  Only
   registers and the pages [src] has dirtied can differ; those pages are
   marked dirty in [dst] too, so its next restore repairs them. *)
let sync ~src dst =
  assert (src.at = dst.at);
  Machine.reset_regs ~from:src.st dst.st;
  match src.st.Machine.track with
  | None -> ()
  | Some tr ->
    let dtr = Option.get dst.st.Machine.track in
    let mem_size = Bytes.length src.st.Machine.mem in
    for i = 0 to tr.Machine.tr_count - 1 do
      let p = tr.Machine.tr_pages.(i) in
      let off = p lsl page_bits in
      let len = min page_size (mem_size - off) in
      Bytes.blit src.st.Machine.mem off dst.st.Machine.mem off len;
      Machine.mark_page dtr p
    done
