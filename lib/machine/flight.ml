(* Execution flight recorder.

   A fixed-depth ring buffer of the last N retired instructions,
   populated from the simulator's per-step observer hook: each entry
   captures the static index, the instruction, and the values its
   architectural destinations hold right after write-back (the same
   write-back point at which the fault injector flips bits).  When a run
   ends in [Detected]/[Crash]/[Timeout], dumping the recorder shows the
   exact instruction window that led to the event — the raw material for
   attributing an outcome to an instruction and a checker. *)

open Ferrum_asm

(* One written destination with its post-write-back value. *)
type write =
  | Wgpr of Reg.gpr * int64
  | Wsimd of Reg.simd * int * int64 (* register, lane, value *)
  | Wflags of bool * bool * bool * bool (* ZF SF CF OF *)

type entry = {
  step : int; (* 1-based dynamic instruction number *)
  static_index : int;
  ins : Instr.ins;
  writes : write list;
}

type t = {
  depth : int;
  slots : entry option array;
  mutable recorded : int; (* total entries ever recorded *)
}

let default_depth = 32

let create ?(depth = default_depth) () =
  if depth <= 0 then invalid_arg "Flight.create: depth must be positive";
  { depth; slots = Array.make depth None; recorded = 0 }

let clear t =
  Array.fill t.slots 0 t.depth None;
  t.recorded <- 0

let recorded t = t.recorded

let record t entry =
  t.slots.(t.recorded mod t.depth) <- Some entry;
  t.recorded <- t.recorded + 1

(* Snapshot the destinations of the instruction that just retired.  The
   observer contract guarantees the state already reflects its
   write-back. *)
let writes_of (img : Machine.image) (st : Machine.state) idx =
  List.map
    (function
      | Instr.Dgpr (r, _) -> Wgpr (r, st.Machine.gpr.{Reg.gpr_index r})
      | Instr.Dsimd (x, lanes) ->
        (match lanes with
        | lane :: _ -> Wsimd (x, lane, st.Machine.simd.{(x * 8) + lane})
        | [] -> Wsimd (x, 0, st.Machine.simd.{x * 8}))
      | Instr.Dflags _ ->
        Wflags (st.Machine.zf, st.Machine.sf, st.Machine.cf, st.Machine.off))
    img.Machine.dests.(idx)

(* The observer to pass as [on_step] (directly or composed). *)
let observe t (img : Machine.image) (st : Machine.state) idx =
  record t
    {
      step = st.Machine.steps;
      static_index = idx;
      ins = img.Machine.code.(idx);
      writes = writes_of img st idx;
    }

(* Entries currently held, oldest first. *)
let entries t =
  let n = min t.recorded t.depth in
  let first = t.recorded - n in
  List.init n (fun i ->
      match t.slots.((first + i) mod t.depth) with
      | Some e -> e
      | None -> assert false)

let pp_write ppf = function
  | Wgpr (r, v) -> Fmt.pf ppf "%%%s=%Ld" (Reg.gpr_name r Reg.Q) v
  | Wsimd (x, lane, v) -> Fmt.pf ppf "%%%s[%d]=%Ld" (Reg.xmm_name x) lane v
  | Wflags (zf, sf, cf, off) ->
    Fmt.pf ppf "zf=%b sf=%b cf=%b of=%b" zf sf cf off

let pp_entry ppf e =
  Fmt.pf ppf "%8d  %4d  %-10s %-40s %a" e.step e.static_index
    (match e.ins.Instr.prov with
    | Instr.Original -> "original"
    | Instr.Dup -> "dup"
    | Instr.Check -> "check"
    | Instr.Instrumentation -> "instr")
    (Printer.string_of_instr e.ins.Instr.op)
    Fmt.(list ~sep:(any "  ") pp_write)
    e.writes

(* Dump the whole window, oldest first, with a header that states how
   much history was dropped. *)
let pp ppf t =
  let held = min t.recorded t.depth in
  Fmt.pf ppf "flight recorder: last %d of %d retired instructions@." held
    t.recorded;
  Fmt.pf ppf "%8s  %4s  %-10s %-40s %s@." "step" "ip" "provenance"
    "instruction" "write-back";
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)
