(* Experiment drivers: run the benchmark suite through the four
   configurations and collect everything the paper's evaluation section
   reports — SDC coverage under fault injection (Fig. 10), runtime
   overhead under the cycle model (Fig. 11), and transform time
   (§IV-B3).  All campaigns are seeded and reproducible. *)

module Machine = Ferrum_machine.Machine
module Cost = Ferrum_machine.Cost
module F = Ferrum_faultsim.Faultsim
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog

type tech_result = {
  technique : Technique.t;
  static_instructions : int;
  dyn_instructions : int;
  cycles : float;
  overhead : float; (* cycle-model runtime overhead, paper Fig. 11 *)
  dyn_overhead : float; (* raw dynamic-instruction overhead *)
  counts : F.counts option; (* None when the campaign was skipped *)
  coverage : float option; (* SDC coverage, paper Fig. 10 *)
  transform_seconds : float;
}

type bench_result = {
  name : string;
  suite : string;
  domain : string;
  static_raw : int;
  dyn_raw : int;
  cycles_raw : float;
  raw_counts : F.counts option;
  techniques : tech_result list;
}

type options = {
  samples : int; (* fault injections per configuration; 0 = skip *)
  seed : int64;
  scope : F.scope;
  cost_model : Cost.model;
  ferrum_config : Ferrum_eddi.Ferrum_pass.config;
  benchmarks : string list option; (* None = all *)
  shards : int; (* >1 = fork-pool campaigns (identical counts) *)
  workers : int option;
}

let default_options =
  {
    samples = 400;
    seed = 2024L;
    scope = F.Original_only;
    cost_model = Cost.default;
    ferrum_config = Ferrum_eddi.Ferrum_pass.default_config;
    benchmarks = None;
    shards = 1;
    workers = None;
  }

(* Campaign outcome counts, sequentially or on the fork pool — the
   shard/merge discipline makes the two byte-identical, so [shards] is
   purely a wall-clock knob. *)
let campaign_counts opts img =
  if opts.shards <= 1 then
    (F.campaign ~scope:opts.scope ~seed:opts.seed ~samples:opts.samples img)
      .F.counts
  else
    let target = F.prepare ~scope:opts.scope img in
    (Ferrum_campaign.Runner.run ?workers:opts.workers
       ~mode:Ferrum_campaign.Runner.Inject ~shards:opts.shards
       ~seed:opts.seed ~samples:opts.samples target)
      .Ferrum_campaign.Runner.counts

let selected_entries opts =
  match opts.benchmarks with
  | None -> Catalog.all
  | Some names ->
    List.filter_map
      (fun n ->
        match Catalog.find n with
        | Some e -> Some e
        | None -> invalid_arg ("unknown benchmark " ^ n))
      names

(* Median-of-repetitions wall-clock of the protection transform, in
   seconds.  The transforms are fast on these kernel sizes, so we repeat
   them to get a stable figure (paper §IV-B3 reports a single run of a
   much larger toolchain). *)
let transform_time technique ?ferrum_config m =
  let reps = 21 in
  let times =
    List.init reps (fun _ ->
        (Pipeline.protect ?ferrum_config technique m).transform_seconds)
  in
  let sorted = List.sort compare times in
  List.nth sorted (reps / 2)

let run_entry opts (e : Catalog.entry) : bench_result =
  let m = e.build () in
  let raw = Pipeline.raw m in
  let raw_img = Machine.load ~cost_model:opts.cost_model raw.program in
  let raw_golden = Machine.golden raw_img in
  (match raw_golden.outcome with
  | Machine.Exit _ -> ()
  | o ->
    Fmt.failwith "benchmark %s: raw golden run failed: %a" e.name
      Machine.pp_outcome o);
  let raw_counts =
    if opts.samples > 0 then Some (campaign_counts opts raw_img) else None
  in
  let techniques =
    List.map
      (fun t ->
        let r =
          Pipeline.protect ~ferrum_config:opts.ferrum_config t m
        in
        let img = Machine.load ~cost_model:opts.cost_model r.program in
        let golden = Machine.golden img in
        (match golden.outcome with
        | Machine.Exit out
          when Machine.equal_outcome (Machine.Exit out) raw_golden.outcome ->
          ()
        | o ->
          Fmt.failwith "benchmark %s under %s: protected output wrong: %a"
            e.name (Technique.name t) Machine.pp_outcome o);
        let counts =
          if opts.samples > 0 then Some (campaign_counts opts img)
          else None
        in
        let coverage =
          match (raw_counts, counts) with
          | Some raw, Some prot ->
            Some (F.sdc_coverage ~raw ~protected_:prot)
          | _ -> None
        in
        {
          technique = t;
          static_instructions = Ferrum_asm.Prog.num_instructions r.program;
          dyn_instructions = golden.Machine.dyn_instructions;
          cycles = golden.Machine.cycles;
          overhead =
            F.overhead ~raw_cycles:raw_golden.Machine.cycles
              ~prot_cycles:golden.Machine.cycles;
          dyn_overhead =
            F.overhead
              ~raw_cycles:(float_of_int raw_golden.Machine.dyn_instructions)
              ~prot_cycles:(float_of_int golden.Machine.dyn_instructions);
          counts;
          coverage;
          transform_seconds =
            transform_time t ~ferrum_config:opts.ferrum_config m;
        })
      Technique.all
  in
  {
    name = e.name;
    suite = e.suite;
    domain = e.domain;
    static_raw = Ferrum_asm.Prog.num_instructions raw.program;
    dyn_raw = raw_golden.Machine.dyn_instructions;
    cycles_raw = raw_golden.Machine.cycles;
    raw_counts;
    techniques;
  }

let run ?(options = default_options) () : bench_result list =
  List.map (run_entry options) (selected_entries options)

let find_tech (b : bench_result) t =
  List.find (fun r -> r.technique = t) b.techniques

(* Arithmetic mean over benchmarks of a per-technique metric. *)
let mean_over results f =
  match results with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc b -> acc +. f b) 0.0 results
    /. float_of_int (List.length results)
