(* Self-contained HTML dashboard over campaign run directories.

   One file, no external assets: styles and data inline, charts as
   inline SVG.  Four panels — outcome stacked bars per workload ×
   technique, detection-latency CDFs, per-site vulnerability heat
   strips, and the protection-overhead provenance split — all rendered
   from the JSONL/manifest files a finished `ferrum campaign` run
   directory already contains.

   Colors are a validated CVD-safe palette (adjacent-pair ΔE gates in
   both light and dark mode); low-contrast slots are relieved by direct
   labels and the per-panel data tables, and all text wears ink tokens,
   never series colors. *)

module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Stats = Ferrum_telemetry.Stats
module Trace = Ferrum_telemetry.Trace
module Manifest = Ferrum_campaign.Manifest
module Store = Ferrum_campaign.Store

(* ------------------------------------------------------------------ *)
(* Run loading.                                                        *)
(* ------------------------------------------------------------------ *)

type site = {
  si_index : int;
  si_opcode : string;
  si_prov : string;
  si_samples : int;
  si_sdc : int;
  si_detected : int;
}

type run = {
  r_dir : string;
  r_manifest : Manifest.t;
  r_classes : (string * int) list;  (** outcome -> count *)
  r_latency : (float * int) list;
      (** (site mean detection-latency cycles, detected count),
          ascending — the site-weighted latency distribution *)
  r_sites : site list;  (** static-index order *)
  r_trace : (int * float * float * float) list;
      (** stats.jsonl convergence trace: (samples spent, SDC p-hat,
          Wilson lo, Wilson hi), chronological; empty without stats *)
}

let label r =
  r.r_manifest.Manifest.benchmark ^ "." ^ r.r_manifest.Manifest.technique

let manifest r = r.r_manifest
let run_dir r = r.r_dir
let latency r = r.r_latency
let sites r = r.r_sites
let convergence r = r.r_trace

let classes = [ "detected"; "sdc"; "crash"; "timeout"; "benign" ]

let class_count r c =
  Option.value ~default:0 (List.assoc_opt c r.r_classes)

let int_member name j =
  match Json.member name j with Some (Json.Int v) -> Some v | _ -> None

let str_member name j =
  match Json.member name j with Some (Json.Str v) -> Some v | _ -> None

let float_member name j =
  match Json.member name j with
  | Some (Json.Float v) -> Some v
  | Some (Json.Int v) -> Some (float_of_int v)
  | _ -> None

let load_run dir : (run, string) result =
  match Manifest.load ~dir with
  | Error e -> Error (Fmt.str "%s: %s" dir e)
  | Ok m -> (
    let injection = Filename.concat dir Store.injection_file in
    if not (Sys.file_exists injection) then
      Error (Fmt.str "%s: missing %s" dir Store.injection_file)
    else
      let counts = Hashtbl.create 8 in
      List.iteri
        (fun i line ->
          if i > 0 then
            match
              Option.bind (Json.of_string_opt line) (str_member "class")
            with
            | Some c ->
              Hashtbl.replace counts c
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
            | None -> ())
        (Metrics.read_lines injection);
      let r_classes =
        List.map
          (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt counts c)))
          classes
      in
      let vulnmap = Filename.concat dir Store.vulnmap_file in
      let r_sites, r_latency =
        if not (Sys.file_exists vulnmap) then ([], [])
        else begin
          let sites =
            List.filteri (fun i _ -> i > 0) (Metrics.read_lines vulnmap)
            |> List.filter_map (fun line ->
                   match Json.of_string_opt line with
                   | None -> None
                   | Some j -> (
                     match
                       ( int_member "static_index" j,
                         str_member "opcode" j,
                         str_member "prov" j,
                         int_member "samples" j,
                         int_member "sdc" j,
                         int_member "detected" j,
                         float_member "mean_det_cycles" j )
                     with
                     | ( Some si_index,
                         Some si_opcode,
                         Some si_prov,
                         Some si_samples,
                         Some si_sdc,
                         Some si_detected,
                         Some mean ) ->
                       Some
                         ( {
                             si_index;
                             si_opcode;
                             si_prov;
                             si_samples;
                             si_sdc;
                             si_detected;
                           },
                           mean )
                     | _ -> None))
          in
          let latency =
            List.filter_map
              (fun (s, mean) ->
                if s.si_detected > 0 then Some (mean, s.si_detected)
                else None)
              sites
            |> List.sort compare
          in
          (List.map fst sites, latency)
        end
      in
      let stats = Filename.concat dir Store.stats_file in
      let r_trace =
        if not (Sys.file_exists stats) then []
        else
          List.filteri (fun i _ -> i > 0) (Metrics.read_lines stats)
          |> List.filter_map (fun line ->
                 match Stats.row_of_string line with
                 | Ok r when r.Stats.row = "trace" ->
                   Some (r.Stats.spent, r.Stats.p, r.Stats.lo, r.Stats.hi)
                 | _ -> None)
      in
      Ok { r_dir = dir; r_manifest = m; r_classes; r_latency; r_sites; r_trace })

let load_runs dir : (run list, string) result =
  let manifest_here d = Sys.file_exists (Filename.concat d Manifest.file) in
  let dirs =
    if manifest_here dir then [ dir ]
    else if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list |> List.sort compare
      |> List.map (Filename.concat dir)
      |> List.filter (fun d -> Sys.is_directory d && manifest_here d)
    else []
  in
  if dirs = [] then
    Error (Fmt.str "%s: no campaign run directories (manifest.json)" dir)
  else
    List.fold_right
      (fun d acc ->
        Result.bind acc (fun runs ->
            Result.map (fun r -> r :: runs) (load_run d)))
      dirs (Ok [])

(* ------------------------------------------------------------------ *)
(* HTML helpers.                                                       *)
(* ------------------------------------------------------------------ *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Outcome series: validated categorical slots, by CSS variable so the
   dark steps swap in one place. *)
let class_var = function
  | "detected" -> "var(--c-detected)"
  | "sdc" -> "var(--c-sdc)"
  | "crash" -> "var(--c-crash)"
  | "timeout" -> "var(--c-timeout)"
  | _ -> "var(--c-benign)"

let prov_order = [ "original"; "dup"; "check"; "instr" ]

let prov_var = function
  | "original" -> "var(--p-original)"
  | "dup" -> "var(--p-dup)"
  | "check" -> "var(--p-check)"
  | _ -> "var(--p-instr)"

(* Sequential blue ramp (light->dark) for the heat strips. *)
let heat_ramp =
  [| "#cde2fb"; "#9ec5f4"; "#6da7ec"; "#3987e5"; "#2a78d6"; "#256abf";
     "#1c5cab"; "#0d366b" |]

let heat_color rate max_rate =
  if max_rate <= 0.0 then heat_ramp.(0)
  else
    let i =
      int_of_float (rate /. max_rate *. float_of_int (Array.length heat_ramp))
    in
    heat_ramp.(max 0 (min (Array.length heat_ramp - 1) i))

let style =
  {css|
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb; --page: #f9f9f7;
    --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
    --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
    --c-detected: #2a78d6; --c-sdc: #e34948; --c-crash: #eda100;
    --c-timeout: #4a3aa7; --c-benign: #1baf7a;
    --p-original: #2a78d6; --p-dup: #eb6834; --p-check: #1baf7a;
    --p-instr: #eda100;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19; --page: #0d0d0d;
      --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
      --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
      --c-detected: #3987e5; --c-sdc: #e66767; --c-crash: #c98500;
      --c-timeout: #9085e9; --c-benign: #199e70;
      --p-original: #3987e5; --p-dup: #d95926; --p-check: #199e70;
      --p-instr: #c98500;
    }
  }
  body { background: var(--page); color: var(--ink-1);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
    margin: 0 auto; max-width: 860px; padding: 24px 16px 64px; }
  h1 { font-size: 20px; } h2 { font-size: 16px; margin: 0 0 4px; }
  .panel { background: var(--surface-1); border: 1px solid var(--ring);
    border-radius: 8px; padding: 16px; margin: 16px 0; }
  .sub { color: var(--ink-2); font-size: 12px; margin: 0 0 10px; }
  .legend { display: flex; flex-wrap: wrap; gap: 12px;
    color: var(--ink-2); font-size: 12px; margin: 8px 0 0; }
  .legend .chip { display: inline-block; width: 10px; height: 10px;
    border-radius: 3px; margin-right: 4px; vertical-align: baseline; }
  .rowlabel { fill: var(--ink-2); font-size: 12px; }
  .spanlabel { fill: #ffffff; font-size: 11px; pointer-events: none; }
  h3 { font-size: 13px; color: var(--ink-2); margin: 10px 0 4px; }
  .val { fill: var(--ink-1); font-size: 11px; }
  .axis-label { fill: var(--ink-3); font-size: 11px; }
  svg { display: block; max-width: 100%; }
  details { margin-top: 10px; color: var(--ink-2); font-size: 12px; }
  table { border-collapse: collapse; margin-top: 6px;
    font-variant-numeric: tabular-nums; }
  th, td { border-bottom: 1px solid var(--grid); padding: 2px 10px 2px 0;
    text-align: right; } th:first-child, td:first-child { text-align: left; }
  |css}

(* ------------------------------------------------------------------ *)
(* Panels.                                                             *)
(* ------------------------------------------------------------------ *)

let chart_w = 760
let label_w = 210
let plot_w = chart_w - label_w - 10

let legend items =
  let chips =
    List.map
      (fun (name, var) ->
        Fmt.str "<span><span class=\"chip\" style=\"background:%s\"></span>%s</span>"
          var (esc name))
      items
  in
  Fmt.str "<div class=\"legend\">%s</div>" (String.concat "" chips)

(* Panel 1: outcome distribution, one stacked horizontal bar per run.
   Segment gaps are 2px of surface; counts are direct-labeled in ink
   when the segment is wide enough (relief for low-contrast slots). *)
let outcomes_panel runs =
  let row_h = 26 and bar_h = 16 in
  let h = (row_h * List.length runs) + 8 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"Outcome distribution\">"
       chart_w h);
  List.iteri
    (fun i r ->
      let y = i * row_h in
      let total = max 1 (List.fold_left (fun a c -> a + class_count r c) 0 classes) in
      Buffer.add_string buf
        (Fmt.str "<text class=\"rowlabel\" x=\"0\" y=\"%d\">%s</text>"
           (y + bar_h - 2) (esc (label r)));
      let x = ref label_w in
      List.iter
        (fun c ->
          let n = class_count r c in
          if n > 0 then begin
            let w = n * plot_w / total in
            let w_draw = max 1 (w - 2) in
            Buffer.add_string buf
              (Fmt.str
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" rx=\"3\" fill=\"%s\"><title>%s: %d/%d</title></rect>"
                 !x y w_draw bar_h (class_var c) (esc c) n total);
            if w_draw > 34 then
              Buffer.add_string buf
                (Fmt.str
                   "<text class=\"val\" x=\"%d\" y=\"%d\" fill=\"#fff\">%d</text>"
                   (!x + 4) (y + bar_h - 4) n);
            x := !x + w
          end)
        classes)
    runs;
  Buffer.add_string buf "</svg>";
  let table =
    let rows =
      List.map
        (fun r ->
          Fmt.str "<tr><td>%s</td>%s</tr>" (esc (label r))
            (String.concat ""
               (List.map
                  (fun c -> Fmt.str "<td>%d</td>" (class_count r c))
                  classes)))
        runs
    in
    Fmt.str
      "<details><summary>Data table</summary><table><tr><th>run</th>%s</tr>%s</table></details>"
      (String.concat ""
         (List.map (fun c -> Fmt.str "<th>%s</th>" (esc c)) classes))
      (String.concat "" rows)
  in
  Fmt.str
    "<section class=\"panel\"><h2>Outcomes</h2><p class=\"sub\">Injection outcomes per workload &#215; technique (stacked, share of samples).</p>%s%s%s</section>"
    (Buffer.contents buf)
    (legend (List.map (fun c -> (c, class_var c)) classes))
    table

(* Panel 2: detection-latency CDFs, one line per run, x = site-mean
   detection latency (cycles), y = cumulative share of detected
   samples.  Series colors are the categorical slots in run order. *)
let series_vars =
  [| "var(--c-detected)"; "var(--p-dup)"; "var(--c-benign)"; "var(--c-crash)";
     "#e87ba4"; "#008300"; "var(--c-timeout)"; "var(--c-sdc)" |]

let latency_panel runs =
  let runs = List.filter (fun r -> r.r_latency <> []) runs in
  if runs = [] then
    "<section class=\"panel\"><h2>Detection latency</h2><p class=\"sub\">No traced runs (vulnmap.jsonl) in this set.</p></section>"
  else begin
    let shown = List.filteri (fun i _ -> i < 8) runs in
    let dropped = List.length runs - List.length shown in
    let w = chart_w and h = 240 in
    let mx = 56 and my = 12 and mb = 28 in
    let pw = w - mx - 12 and ph = h - my - mb in
    let max_x =
      List.fold_left
        (fun a r -> List.fold_left (fun a (c, _) -> max a c) a r.r_latency)
        1.0 shown
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Fmt.str "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"Detection latency CDF\">" w h);
    (* grid + y axis: 0 25 50 75 100% *)
    List.iter
      (fun q ->
        let y = my + ph - int_of_float (float_of_int ph *. q) in
        Buffer.add_string buf
          (Fmt.str
             "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--grid)\"/><text class=\"axis-label\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%.0f%%</text>"
             mx y (mx + pw) y (mx - 6) (y + 4) (q *. 100.0)))
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
    Buffer.add_string buf
      (Fmt.str
         "<text class=\"axis-label\" x=\"%d\" y=\"%d\">detection latency (model cycles, site mean)</text>"
         mx (h - 8));
    Buffer.add_string buf
      (Fmt.str
         "<text class=\"axis-label\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%.0f</text>"
         (mx + pw) (my + ph + 14) max_x);
    List.iteri
      (fun i r ->
        let total =
          List.fold_left (fun a (_, n) -> a + n) 0 r.r_latency
        in
        let pts = Buffer.create 256 in
        Buffer.add_string pts (Fmt.str "%d,%d" mx (my + ph));
        let acc = ref 0 in
        List.iter
          (fun (c, n) ->
            acc := !acc + n;
            let x =
              mx + int_of_float (c /. max_x *. float_of_int pw)
            in
            let y =
              my + ph
              - int_of_float
                  (float_of_int !acc /. float_of_int total
                  *. float_of_int ph)
            in
            Buffer.add_string pts (Fmt.str " %d,%d" x y))
          r.r_latency;
        Buffer.add_string buf
          (Fmt.str
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\" stroke-linejoin=\"round\"><title>%s (%d detected)</title></polyline>"
             (Buffer.contents pts)
             series_vars.(i mod Array.length series_vars)
             (esc (label r)) total))
      shown;
    Buffer.add_string buf "</svg>";
    let note =
      if dropped > 0 then
        Fmt.str "<p class=\"sub\">%d more runs omitted (series cap 8); see the data table.</p>" dropped
      else ""
    in
    let table =
      Fmt.str
        "<details><summary>Data table</summary><table><tr><th>run</th><th>detected</th><th>median latency</th><th>max latency</th></tr>%s</table></details>"
        (String.concat ""
           (List.map
              (fun r ->
                let total =
                  List.fold_left (fun a (_, n) -> a + n) 0 r.r_latency
                in
                let median =
                  let acc = ref 0 and res = ref 0.0 in
                  (try
                     List.iter
                       (fun (c, n) ->
                         acc := !acc + n;
                         if !acc * 2 >= total then begin
                           res := c;
                           raise Exit
                         end)
                       r.r_latency
                   with Exit -> ());
                  !res
                in
                let mx_l =
                  List.fold_left (fun a (c, _) -> max a c) 0.0 r.r_latency
                in
                Fmt.str
                  "<tr><td>%s</td><td>%d</td><td>%.1f</td><td>%.1f</td></tr>"
                  (esc (label r)) total median mx_l)
              runs))
    in
    Fmt.str
      "<section class=\"panel\"><h2>Detection latency</h2><p class=\"sub\">CDF of detection latency over detected injections (site-mean cycles, weighted by per-site detections).</p>%s%s%s%s</section>"
      (Buffer.contents buf)
      (legend
         (List.mapi
            (fun i r ->
              (label r, series_vars.(i mod Array.length series_vars)))
            shown))
      note table
  end

(* Convergence panel: campaign SDC estimate vs samples spent, one line
   per run with its Wilson 95% band as a translucent polygon — the
   live view of how much certainty each additional sample bought. *)
let convergence_panel runs =
  let runs = List.filter (fun r -> r.r_trace <> []) runs in
  if runs = [] then
    "<section class=\"panel\"><h2>Convergence</h2><p class=\"sub\">No \
     confidence telemetry (stats.jsonl) in this set.</p></section>"
  else begin
    let shown = List.filteri (fun i _ -> i < 8) runs in
    let dropped = List.length runs - List.length shown in
    let w = chart_w and h = 240 in
    let mx = 56 and my = 12 and mb = 28 in
    let pw = w - mx - 12 and ph = h - my - mb in
    let max_x =
      List.fold_left
        (fun a r ->
          List.fold_left (fun a (s, _, _, _) -> max a s) a r.r_trace)
        1 shown
    in
    let max_y =
      List.fold_left
        (fun a r ->
          List.fold_left (fun a (_, _, _, hi) -> Float.max a hi) a r.r_trace)
        0.01 shown
    in
    let max_y = Float.min 1.0 (max_y *. 1.05) in
    let px s = mx + (s * pw / max_x) in
    let py v =
      my + ph - int_of_float (v /. max_y *. float_of_int ph)
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Fmt.str
         "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"SDC estimate convergence\">"
         w h);
    List.iter
      (fun q ->
        let y = my + ph - int_of_float (float_of_int ph *. q) in
        Buffer.add_string buf
          (Fmt.str
             "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--grid)\"/><text class=\"axis-label\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%.3f</text>"
             mx y (mx + pw) y (mx - 6) (y + 4) (q *. max_y)))
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
    Buffer.add_string buf
      (Fmt.str
         "<text class=\"axis-label\" x=\"%d\" y=\"%d\">samples spent (SDC probability with Wilson 95%% band)</text>"
         mx (h - 8));
    Buffer.add_string buf
      (Fmt.str
         "<text class=\"axis-label\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%d</text>"
         (mx + pw) (my + ph + 14) max_x);
    List.iteri
      (fun i r ->
        let color = series_vars.(i mod Array.length series_vars) in
        (* CI band: upper bound forward, lower bound back. *)
        let band = Buffer.create 256 in
        List.iter
          (fun (s, _, _, hi) ->
            Buffer.add_string band (Fmt.str "%d,%d " (px s) (py hi)))
          r.r_trace;
        List.iter
          (fun (s, _, lo, _) ->
            Buffer.add_string band (Fmt.str "%d,%d " (px s) (py lo)))
          (List.rev r.r_trace);
        Buffer.add_string buf
          (Fmt.str
             "<polygon points=\"%s\" fill=\"%s\" fill-opacity=\"0.18\" stroke=\"none\"/>"
             (String.trim (Buffer.contents band))
             color);
        let pts = Buffer.create 256 in
        List.iter
          (fun (s, p, _, _) ->
            Buffer.add_string pts (Fmt.str "%d,%d " (px s) (py p)))
          r.r_trace;
        Buffer.add_string buf
          (Fmt.str
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\" stroke-linejoin=\"round\"><title>%s</title></polyline>"
             (String.trim (Buffer.contents pts))
             color (esc (label r))))
      shown;
    Buffer.add_string buf "</svg>";
    let note =
      if dropped > 0 then
        Fmt.str
          "<p class=\"sub\">%d more runs omitted (series cap 8); see the data table.</p>"
          dropped
      else ""
    in
    let table =
      Fmt.str
        "<details><summary>Data table</summary><table><tr><th>run</th><th>samples</th><th>final p</th><th>final 95%% interval</th></tr>%s</table></details>"
        (String.concat ""
           (List.map
              (fun r ->
                let spent, p, lo, hi =
                  List.fold_left (fun _ last -> last) (0, 0.0, 0.0, 1.0)
                    r.r_trace
                in
                Fmt.str
                  "<tr><td>%s</td><td>%d</td><td>%.4f</td><td>[%.4f, %.4f]</td></tr>"
                  (esc (label r)) spent p lo hi)
              runs))
    in
    Fmt.str
      "<section class=\"panel\"><h2>Convergence</h2><p class=\"sub\">Campaign SDC estimate vs samples spent; shaded region is the Wilson 95%% confidence band.</p>%s%s%s%s</section>"
      (Buffer.contents buf)
      (legend
         (List.mapi
            (fun i r ->
              (label r, series_vars.(i mod Array.length series_vars)))
            shown))
      note table
  end

(* Panel 3: per-site vulnerability heat strips — one row per traced
   run, one cell per (eligible or hit) static site, sequential blue by
   SDC rate. *)
let vulnmap_panel runs =
  let runs = List.filter (fun r -> r.r_sites <> []) runs in
  if runs = [] then
    "<section class=\"panel\"><h2>Vulnerability map</h2><p class=\"sub\">No traced runs (vulnmap.jsonl) in this set.</p></section>"
  else begin
    let row_h = 30 and strip_h = 16 in
    let h = (row_h * List.length runs) + 8 in
    let max_rate =
      List.fold_left
        (fun a r ->
          List.fold_left
            (fun a s ->
              if s.si_samples > 0 then
                max a (float_of_int s.si_sdc /. float_of_int s.si_samples)
              else a)
            a r.r_sites)
        0.0 runs
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Fmt.str "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"Per-site SDC heat strips\">" chart_w h);
    List.iteri
      (fun i r ->
        let y = i * row_h in
        let n = List.length r.r_sites in
        let cell_w = float_of_int plot_w /. float_of_int n in
        Buffer.add_string buf
          (Fmt.str "<text class=\"rowlabel\" x=\"0\" y=\"%d\">%s</text>"
             (y + strip_h - 2) (esc (label r)));
        List.iteri
          (fun k s ->
            let rate =
              if s.si_samples > 0 then
                float_of_int s.si_sdc /. float_of_int s.si_samples
              else 0.0
            in
            let x =
              label_w + int_of_float (float_of_int k *. cell_w)
            in
            let w =
              max 1
                (int_of_float (float_of_int (k + 1) *. cell_w)
                - int_of_float (float_of_int k *. cell_w))
            in
            Buffer.add_string buf
              (Fmt.str
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"><title>#%d %s (%s): sdc %d/%d</title></rect>"
                 x y w strip_h
                 (heat_color rate max_rate)
                 s.si_index (esc s.si_opcode) (esc s.si_prov) s.si_sdc
                 s.si_samples))
          r.r_sites)
      runs;
    Buffer.add_string buf "</svg>";
    let table =
      Fmt.str
        "<details><summary>Most vulnerable sites</summary><table><tr><th>run</th><th>site</th><th>opcode</th><th>sdc</th><th>samples</th></tr>%s</table></details>"
        (String.concat ""
           (List.concat_map
              (fun r ->
                List.filter (fun s -> s.si_sdc > 0) r.r_sites
                |> List.sort (fun a b ->
                       compare (b.si_sdc, a.si_index) (a.si_sdc, b.si_index))
                |> List.filteri (fun i _ -> i < 5)
                |> List.map (fun s ->
                       Fmt.str
                         "<tr><td>%s</td><td>#%d</td><td>%s</td><td>%d</td><td>%d</td></tr>"
                         (esc (label r)) s.si_index (esc s.si_opcode)
                         s.si_sdc s.si_samples))
              runs))
    in
    Fmt.str
      "<section class=\"panel\"><h2>Vulnerability map</h2><p class=\"sub\">Per static-site SDC rate (left&#8594;right in program order; darker = more SDCs; scale shared, max %.0f%%).</p>%s%s</section>"
      (max_rate *. 100.0) (Buffer.contents buf) table
  end

(* Panel 4: protection-overhead split — golden-run cycles by
   provenance, one stacked bar per run. *)
let overhead_panel runs =
  let row_h = 26 and bar_h = 16 in
  let h = (row_h * List.length runs) + 8 in
  let max_total =
    List.fold_left
      (fun a r ->
        max a
          (List.fold_left (fun a (_, c) -> a +. c) 0.0
             r.r_manifest.Manifest.profile))
      1.0 runs
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"Overhead split\">"
       chart_w h);
  List.iteri
    (fun i r ->
      let y = i * row_h in
      Buffer.add_string buf
        (Fmt.str "<text class=\"rowlabel\" x=\"0\" y=\"%d\">%s</text>"
           (y + bar_h - 2) (esc (label r)));
      let x = ref label_w in
      List.iter
        (fun p ->
          let c =
            Option.value ~default:0.0
              (List.assoc_opt p r.r_manifest.Manifest.profile)
          in
          if c > 0.0 then begin
            let w =
              int_of_float (c /. max_total *. float_of_int plot_w)
            in
            let w_draw = max 1 (w - 2) in
            Buffer.add_string buf
              (Fmt.str
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" rx=\"3\" fill=\"%s\"><title>%s: %.1f cycles</title></rect>"
                 !x y w_draw bar_h (prov_var p) (esc p) c);
            x := !x + w
          end)
        prov_order)
    runs;
  Buffer.add_string buf "</svg>";
  let table =
    Fmt.str
      "<details><summary>Data table</summary><table><tr><th>run</th>%s<th>total</th></tr>%s</table></details>"
      (String.concat ""
         (List.map (fun p -> Fmt.str "<th>%s</th>" (esc p)) prov_order))
      (String.concat ""
         (List.map
            (fun r ->
              let total =
                List.fold_left (fun a (_, c) -> a +. c) 0.0
                  r.r_manifest.Manifest.profile
              in
              Fmt.str "<tr><td>%s</td>%s<td>%.1f</td></tr>" (esc (label r))
                (String.concat ""
                   (List.map
                      (fun p ->
                        Fmt.str "<td>%.1f</td>"
                          (Option.value ~default:0.0
                             (List.assoc_opt p r.r_manifest.Manifest.profile)))
                      prov_order))
                total)
            runs))
  in
  Fmt.str
    "<section class=\"panel\"><h2>Overhead split</h2><p class=\"sub\">Golden-run cycles by instruction provenance (common scale across runs).</p>%s%s%s</section>"
    (Buffer.contents buf)
    (legend (List.map (fun p -> (p, prov_var p)) prov_order))
    table

(* Panel 5: campaign trace — one packed icicle (flamegraph layout) per
   run from trace.jsonl.  Worker logical clocks are process-local, so
   spans are packed by relative weight (a span's logical duration, or
   the sum of its children's weights when larger) rather than placed
   on an absolute time axis; the wall sidecar, when present, only
   feeds the hover titles and the hot-span table. *)

let trace_row_h = 20
let trace_bar_h = 16

(* Per-process colors: categorical, first-seen order, cycled. *)
let trace_palette =
  [| "#4477aa"; "#ee6677"; "#228833"; "#ccbb44"; "#66ccee"; "#aa3377" |]

let load_trace_doc dir file parse =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then []
  else
    match Metrics.read_lines path with
    | _header :: records -> (
      match Trace.rows_of_lines records with
      | Ok rows -> parse rows
      | Error _ -> [])
    | [] -> []

let trace_panel runs =
  let data =
    List.map
      (fun r ->
        ( r,
          load_trace_doc r.r_dir Store.trace_file Trace.spans_of_rows,
          load_trace_doc r.r_dir Store.trace_wall_file Trace.walls_of_rows ))
      runs
  in
  if List.for_all (fun (_, spans, _) -> spans = []) data then ""
  else begin
    let buf = Buffer.create 8192 in
    let hot = ref [] in
    List.iter
      (fun (r, spans, walls) ->
        if spans <> [] then begin
          let wall_of =
            let tbl = Hashtbl.create 64 in
            List.iter
              (fun (w : Trace.wall) -> Hashtbl.replace tbl w.Trace.wl_span w)
              walls;
            Hashtbl.find_opt tbl
          in
          List.iter
            (fun (w : Trace.wall) ->
              hot := (label r, w) :: !hot)
            walls;
          let procs = ref [] in
          let proc_color p =
            (match List.assoc_opt p !procs with
            | Some c -> c
            | None ->
              let c =
                trace_palette.(List.length !procs
                               mod Array.length trace_palette)
              in
              procs := !procs @ [ (p, c) ];
              c)
          in
          let children = Hashtbl.create 64 in
          let ids = Hashtbl.create 64 in
          List.iter
            (fun (s : Trace.span) -> Hashtbl.replace ids s.Trace.sp_id s)
            spans;
          List.iter
            (fun (s : Trace.span) ->
              if Hashtbl.mem ids s.Trace.sp_parent then
                Hashtbl.replace children s.Trace.sp_parent
                  (s
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt children s.Trace.sp_parent)))
            spans;
          let kids id =
            List.sort
              (fun (a : Trace.span) b ->
                compare
                  (a.Trace.sp_l_start, a.Trace.sp_id)
                  (b.Trace.sp_l_start, b.Trace.sp_id))
              (Option.value ~default:[] (Hashtbl.find_opt children id))
          in
          let rec weight (s : Trace.span) =
            let own = s.Trace.sp_l_end - s.Trace.sp_l_start in
            let below =
              List.fold_left (fun a c -> a +. weight c) 0.0 (kids s.sp_id)
            in
            Float.max 1.0 (Float.max (float_of_int own) below)
          in
          let roots =
            List.filter
              (fun (s : Trace.span) ->
                s.Trace.sp_parent = ""
                || not (Hashtbl.mem ids s.Trace.sp_parent))
              spans
          in
          let depth = ref 1 in
          let rec measure d (s : Trace.span) =
            if d + 1 > !depth then depth := d + 1;
            List.iter (measure (d + 1)) (kids s.Trace.sp_id)
          in
          List.iter (measure 0) roots;
          let h = !depth * trace_row_h in
          Buffer.add_string buf
            (Fmt.str
               "<h3>%s</h3><svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"Trace icicle for %s\">"
               (esc (label r)) chart_w h (esc (label r)));
          let rec emit d x w (s : Trace.span) =
            if w >= 1.5 then begin
              let title =
                let counters =
                  match s.Trace.sp_counters with
                  | [] -> ""
                  | cs ->
                    " ["
                    ^ String.concat ", "
                        (List.map (fun (k, v) -> Fmt.str "%s=%d" k v) cs)
                    ^ "]"
                in
                let wall =
                  match wall_of s.Trace.sp_id with
                  | Some wl ->
                    Fmt.str " wall %.1f ms, cpu %.1f ms"
                      ((wl.Trace.wl_end -. wl.Trace.wl_start) *. 1e3)
                      ((wl.Trace.wl_cpu_user +. wl.Trace.wl_cpu_sys) *. 1e3)
                  | None -> ""
                in
                Fmt.str "%s (%s): %d steps%s%s" s.Trace.sp_name
                  s.Trace.sp_proc
                  (s.Trace.sp_l_end - s.Trace.sp_l_start)
                  wall counters
              in
              Buffer.add_string buf
                (Fmt.str
                   "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" rx=\"2\" fill=\"%s\"><title>%s</title></rect>"
                   x
                   (d * trace_row_h)
                   (Float.max 1.0 (w -. 1.0))
                   trace_bar_h
                   (proc_color s.Trace.sp_proc)
                   (esc title));
              if w >= 40.0 then
                Buffer.add_string buf
                  (Fmt.str
                     "<text class=\"spanlabel\" x=\"%.1f\" y=\"%d\">%s</text>"
                     (x +. 3.0)
                     ((d * trace_row_h) + trace_bar_h - 4)
                     (esc s.Trace.sp_name));
              let total = weight s in
              let cx = ref x in
              List.iter
                (fun c ->
                  let cw = w *. weight c /. total in
                  emit (d + 1) !cx cw c;
                  cx := !cx +. cw)
                (kids s.Trace.sp_id)
            end
          in
          let rtotal =
            List.fold_left (fun a s -> a +. weight s) 0.0 roots
          in
          let x = ref 0.0 in
          List.iter
            (fun s ->
              let w = float_of_int chart_w *. weight s /. rtotal in
              emit 0 !x w s;
              x := !x +. w)
            roots;
          Buffer.add_string buf "</svg>";
          Buffer.add_string buf
            (legend (List.map (fun (p, c) -> (p, c)) !procs))
        end)
      data;
    let table =
      let rows =
        List.sort
          (fun (_, (a : Trace.wall)) (_, b) ->
            compare
              (b.Trace.wl_end -. b.Trace.wl_start)
              (a.Trace.wl_end -. a.Trace.wl_start))
          !hot
        |> List.filteri (fun i _ -> i < 10)
        |> List.map (fun (lbl, (w : Trace.wall)) ->
               Fmt.str
                 "<tr><td>%s</td><td>%s</td><td>%s</td><td>%.1f</td><td>%.1f</td><td>%d</td></tr>"
                 (esc lbl) (esc w.Trace.wl_name) (esc w.Trace.wl_proc)
                 ((w.Trace.wl_end -. w.Trace.wl_start) *. 1e3)
                 ((w.Trace.wl_cpu_user +. w.Trace.wl_cpu_sys) *. 1e3)
                 w.Trace.wl_maxrss_kb)
      in
      if rows = [] then ""
      else
        Fmt.str
          "<details><summary>Hottest spans by wall time</summary><table><tr><th>run</th><th>span</th><th>proc</th><th>wall ms</th><th>cpu ms</th><th>maxrss kB</th></tr>%s</table></details>"
          (String.concat "" rows)
    in
    Fmt.str
      "<section class=\"panel\"><h2>Campaign trace</h2><p class=\"sub\">Packed span icicle per run (width &#8733; logical steps; hover for wall/CPU from the sidecar; colors by process).</p>%s%s</section>"
      (Buffer.contents buf) table
  end

(* ------------------------------------------------------------------ *)
(* Document.                                                           *)
(* ------------------------------------------------------------------ *)

let render (runs : run list) : string =
  let summary =
    let total_samples =
      List.fold_left (fun a r -> a + r.r_manifest.Manifest.samples) 0 runs
    in
    Fmt.str
      "<p class=\"sub\">%d run%s, %d samples total. Seeds and shard maps in each run&#8217;s manifest.json.</p>"
      (List.length runs)
      (if List.length runs = 1 then "" else "s")
      total_samples
  in
  String.concat ""
    [
      "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
      "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">";
      "<title>ferrum campaign dashboard</title><style>";
      style;
      "</style></head><body>";
      "<h1>ferrum campaign dashboard</h1>";
      summary;
      outcomes_panel runs;
      convergence_panel runs;
      latency_panel runs;
      vulnmap_panel runs;
      overhead_panel runs;
      trace_panel runs;
      "</body></html>";
    ]

let render_dir dir : (string, string) result =
  Result.map render (load_runs dir)
