(** Cross-run history page over the content-addressed run store.

    Served by the campaign daemon at [GET /history]: a summary table
    of every published run in publication order, run-to-run diffs for
    consecutive publications of the same workload × technique (outcome
    tally deltas, site-weighted latency percentile deltas,
    vulnerability-map drift), and the {!Html} dashboard panels reused
    over the stored runs. *)

(** Site-weighted latency percentile ([q] in [0, 1]) over {!Html.latency}'s
    ascending (mean cycles, detected count) distribution; [None] on an
    empty distribution. *)
val percentile : float -> (float * int) list -> float option

(** Vulnerability-map drift between two traced runs: sites matched by
    static index, [(significant sites, summed |SDC delta| over them)].
    A site is significant only when the two runs' Wilson 95% intervals
    on its SDC rate are disjoint — tally movement inside overlapping
    intervals is sampling noise, not drift.  [None] when either run is
    untraced. *)
val drift : Html.run -> Html.run -> (int * int) option

(** Render the history page for a store root.  An empty store renders
    an empty-state page, not an error. *)
val render : root:string -> (string, string) result
