(* Machine-readable export of experiment results (CSV), so the recorded
   runs can be post-processed outside OCaml (spreadsheets, plotting). *)

module F = Ferrum_faultsim.Faultsim
module Technique = Ferrum_eddi.Technique
open Experiments

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row cells = String.concat "," (List.map escape cells) ^ "\n"

let counts_cells = function
  | Some (c : F.counts) ->
    [ string_of_int c.F.samples; string_of_int c.F.benign;
      string_of_int c.F.sdc; string_of_int c.F.detected;
      string_of_int c.F.crash; string_of_int c.F.timeout ]
  | None -> [ ""; ""; ""; ""; ""; "" ]

(* One line per (benchmark, configuration), raw included. *)
let csv (results : bench_result list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (row
       [ "benchmark"; "suite"; "domain"; "config"; "static_instructions";
         "dynamic_instructions"; "cycles"; "overhead"; "dyn_overhead";
         "coverage"; "transform_seconds"; "samples"; "benign"; "sdc";
         "detected"; "crash"; "timeout" ]);
  List.iter
    (fun (b : bench_result) ->
      Buffer.add_string buf
        (row
           ([ b.name; b.suite; b.domain; "raw"; string_of_int b.static_raw;
              string_of_int b.dyn_raw; Printf.sprintf "%.1f" b.cycles_raw;
              "0"; "0"; ""; "0" ]
           @ counts_cells b.raw_counts));
      List.iter
        (fun (t : tech_result) ->
          Buffer.add_string buf
            (row
               ([ b.name; b.suite; b.domain;
                  Technique.short_name t.technique;
                  string_of_int t.static_instructions;
                  string_of_int t.dyn_instructions;
                  Printf.sprintf "%.1f" t.cycles;
                  Printf.sprintf "%.6f" t.overhead;
                  Printf.sprintf "%.6f" t.dyn_overhead;
                  (match t.coverage with
                  | Some c -> Printf.sprintf "%.6f" c
                  | None -> "");
                  Printf.sprintf "%.6f" t.transform_seconds ]
               @ counts_cells t.counts)))
        b.techniques)
    results;
  Buffer.contents buf

let write_csv path results =
  let oc = open_out path in
  output_string oc (csv results);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Machine-readable metrics JSON (bench --metrics).                    *)
(* ------------------------------------------------------------------ *)

module Json = Ferrum_telemetry.Json

let json_of_counts = function
  | Some (c : F.counts) ->
    Json.Obj
      [ ("samples", Json.Int c.F.samples); ("benign", Json.Int c.F.benign);
        ("sdc", Json.Int c.F.sdc); ("detected", Json.Int c.F.detected);
        ("crash", Json.Int c.F.crash); ("timeout", Json.Int c.F.timeout) ]
  | None -> Json.Null

let json_of_tech (t : tech_result) =
  Json.Obj
    [ ("config", Json.Str (Technique.short_name t.technique));
      ("static_instructions", Json.Int t.static_instructions);
      ("dynamic_instructions", Json.Int t.dyn_instructions);
      ("cycles", Json.Float t.cycles);
      ("overhead", Json.Float t.overhead);
      ("dyn_overhead", Json.Float t.dyn_overhead);
      ("coverage",
       match t.coverage with Some c -> Json.Float c | None -> Json.Null);
      ("transform_seconds", Json.Float t.transform_seconds);
      ("counts", json_of_counts t.counts) ]

let json_of_bench (b : bench_result) =
  Json.Obj
    [ ("benchmark", Json.Str b.name); ("suite", Json.Str b.suite);
      ("domain", Json.Str b.domain);
      ("raw",
       Json.Obj
         [ ("static_instructions", Json.Int b.static_raw);
           ("dynamic_instructions", Json.Int b.dyn_raw);
           ("cycles", Json.Float b.cycles_raw);
           ("counts", json_of_counts b.raw_counts) ]);
      ("techniques", Json.Arr (List.map json_of_tech b.techniques)) ]

(* Flat-vs-adaptive allocation comparison over one benchmark: mean
   Wilson 95% half-width on the worst decile of vulnerability-map
   sites under the same total budget, and the implied sample savings
   (half-width scales as 1/sqrt(n), so matching the adaptive width
   with flat sampling would cost a factor (flat/adaptive)^2 more
   samples). *)
type adaptive_result = {
  a_benchmark : string;
  a_budget : int;
  a_rounds : int;
  a_sites : int;  (** candidate static sites *)
  a_decile : int;  (** worst-decile size *)
  a_flat_n : float;  (** mean samples per worst-decile site, flat *)
  a_adaptive_n : float;
  a_flat_hw : float;  (** mean Wilson half-width over the decile *)
  a_adaptive_hw : float;
  a_flat_wall : float;
  a_adaptive_wall : float;
}

let adaptive_savings (a : adaptive_result) =
  if a.a_flat_hw <= 0.0 then 0.0
  else 1.0 -. ((a.a_adaptive_hw /. a.a_flat_hw) ** 2.0)

let json_of_adaptive (a : adaptive_result) =
  Json.Obj
    [ ("benchmark", Json.Str a.a_benchmark);
      ("budget", Json.Int a.a_budget);
      ("rounds", Json.Int a.a_rounds);
      ("sites", Json.Int a.a_sites);
      ("worst_decile_sites", Json.Int a.a_decile);
      ("flat_decile_samples", Json.Float a.a_flat_n);
      ("adaptive_decile_samples", Json.Float a.a_adaptive_n);
      ("flat_decile_half_width", Json.Float a.a_flat_hw);
      ("adaptive_decile_half_width", Json.Float a.a_adaptive_hw);
      ("sample_savings", Json.Float (adaptive_savings a));
      ("flat_wall_seconds", Json.Float a.a_flat_wall);
      ("adaptive_wall_seconds", Json.Float a.a_adaptive_wall) ]

(* One benchmark's injection-engine throughput snapshot: samples/sec
   per engine configuration, with the checkpointed engine measured on
   both dispatch loops so the BENCH trajectory records the
   legacy-to-predecoded speedup. *)
type perf_result = {
  p_benchmark : string;
  p_scratch : float;
  p_pooled : float;
  p_legacy : float; (* ckpt-4096, legacy Machine.step dispatch *)
  p_predecoded : float; (* ckpt-4096, pre-decoded threaded dispatch *)
}

let perf_speedup (p : perf_result) =
  if p.p_legacy <= 0.0 then 0.0 else p.p_predecoded /. p.p_legacy

let json_of_perf (p : perf_result) =
  Json.Obj
    [ ("benchmark", Json.Str p.p_benchmark);
      ("scratch_sps", Json.Float p.p_scratch);
      ("pooled_sps", Json.Float p.p_pooled);
      ("legacy_ckpt_sps", Json.Float p.p_legacy);
      ("predecoded_ckpt_sps", Json.Float p.p_predecoded);
      ("speedup", Json.Float (perf_speedup p)) ]

(* Full bench metrics document: meta (sample counts, seed), one entry
   per timed experiment (name + wall seconds — wall clock is confined
   here, the per-benchmark results are deterministic per seed), the
   per-benchmark results themselves, and the flat-vs-adaptive
   allocation comparison and per-engine throughput when they ran. *)
let bench_kind = "ferrum.bench.v1"

let metrics_json ?(adaptive = []) ?(perf = []) ~samples ~seed ~experiments
    (results : bench_result list) =
  Json.Obj
    ([ ("schema", Json.Str bench_kind);
       ("version", Json.Int Ferrum_telemetry.Metrics.schema_version);
       ("samples", Json.Int samples);
       ("seed", Json.Str (Int64.to_string seed));
       ("experiments",
        Json.Arr
          (List.map
             (fun (name, wall_seconds) ->
               Json.Obj
                 [ ("name", Json.Str name);
                   ("wall_seconds", Json.Float wall_seconds) ])
             experiments));
       ("results", Json.Arr (List.map json_of_bench results)) ]
    @ (match adaptive with
      | [] -> []
      | l -> [ ("adaptive", Json.Arr (List.map json_of_adaptive l)) ])
    @
    match perf with
    | [] -> []
    | l -> [ ("perf", Json.Arr (List.map json_of_perf l)) ])

let write_metrics_json ?adaptive ?perf path ~samples ~seed ~experiments
    results =
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (metrics_json ?adaptive ?perf ~samples ~seed ~experiments results));
  output_char oc '\n';
  close_out oc
