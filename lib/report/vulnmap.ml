(* Annotated-assembly rendering of a per-site vulnerability map.

   One line per static instruction — provenance, the instruction text,
   and (when the site was sampled) its outcome distribution and mean
   detection latency — followed by a campaign summary: totals, the
   detection-latency distribution, the most vulnerable sites and the
   escape explanations of every SDC.  This is the paper's "fast" claim
   turned into a listing you can read line by line: which sites the
   protection covers, how quickly their faults are caught, and where the
   silent escapes live. *)

open Ferrum_asm
module F = Ferrum_faultsim.Faultsim
module Propagation = Ferrum_telemetry.Propagation
module Stats = Ferrum_telemetry.Stats

(* Wilson 95% half-width of a site's SDC rate. *)
let site_hw (c : F.counts) =
  Stats.half_width (Stats.wilson { Stats.n = c.F.samples; k = c.F.sdc })

let prov_tag = function
  | Instr.Original -> "original"
  | Instr.Dup -> "dup"
  | Instr.Check -> "check"
  | Instr.Instrumentation -> "instr"

(* Percentile over detected-run latencies (nearest-rank on the sorted
   list); [None] on empty input. *)
let percentile xs p =
  match List.sort compare xs with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let rank =
      min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)
    in
    Some (List.nth sorted (max 0 rank))

type latency_stats = {
  detected : int;
  mean_steps : float;
  p50_steps : int;
  p95_steps : int;
  max_steps : int;
  mean_cycles : float;
}

(* Distribution of detection latencies over a campaign's detected runs;
   [None] when nothing was detected. *)
let latency_stats (v : F.vulnmap) =
  match v.F.v_latencies with
  | [] -> None
  | lats ->
    let steps = List.map fst lats in
    let n = float_of_int (List.length lats) in
    let sum_steps = List.fold_left ( + ) 0 steps in
    let sum_cycles = List.fold_left (fun a (_, c) -> a +. c) 0.0 lats in
    Some
      {
        detected = List.length lats;
        mean_steps = float_of_int sum_steps /. n;
        p50_steps = Option.value ~default:0 (percentile steps 50.0);
        p95_steps = Option.value ~default:0 (percentile steps 95.0);
        max_steps = List.fold_left max 0 steps;
        mean_cycles = sum_cycles /. n;
      }

let listing ?(only_sampled = false) (v : F.vulnmap) =
  let buf = Buffer.create 4096 in
  let code = v.F.v_target.F.img.Ferrum_machine.Machine.code in
  Buffer.add_string buf
    (Fmt.str "%5s  %-9s %-44s %5s %5s %4s %4s %5s %4s %9s %8s@." "idx"
       "prov" "instruction" "n" "ben" "sdc" "det" "crash" "t/o" "det-lat"
       "sdc ±95");
  Array.iteri
    (fun i (ins : Instr.ins) ->
      let s = v.F.v_sites.(i) in
      let sampled = s.F.s_counts.F.samples > 0 in
      if (not only_sampled) || sampled then
        if sampled then
          let lat =
            match F.mean_latency s with
            | Some (steps, _) -> Fmt.str "%9.1f" steps
            | None -> Fmt.str "%9s" "-"
          in
          Buffer.add_string buf
            (Fmt.str "%5d  %-9s %-44s %5d %5d %4d %4d %5d %4d %s %8s@." i
               (prov_tag ins.Instr.prov)
               (Printer.string_of_instr ins.Instr.op)
               s.F.s_counts.F.samples s.F.s_counts.F.benign
               s.F.s_counts.F.sdc s.F.s_counts.F.detected
               s.F.s_counts.F.crash s.F.s_counts.F.timeout lat
               (Fmt.str "±%.3f" (site_hw s.F.s_counts)))
        else
          Buffer.add_string buf
            (Fmt.str "%5d  %-9s %-44s %5s@." i (prov_tag ins.Instr.prov)
               (Printer.string_of_instr ins.Instr.op)
               (if v.F.v_target.F.eligible.(i) then "." else "")))
    code;
  Buffer.contents buf

(* Sites with the most SDCs (then lowest detection counts), for the
   summary's "where to protect next" view. *)
let worst_sites ?(top = 5) (v : F.vulnmap) =
  let sites = ref [] in
  Array.iteri
    (fun i (s : F.site_stat) ->
      if s.F.s_counts.F.sdc > 0 then sites := (i, s) :: !sites)
    v.F.v_sites;
  let sorted =
    List.sort
      (fun (_, (a : F.site_stat)) (_, (b : F.site_stat)) ->
        compare b.F.s_counts.F.sdc a.F.s_counts.F.sdc)
      !sites
  in
  List.filteri (fun i _ -> i < top) sorted

let summary (v : F.vulnmap) =
  let buf = Buffer.create 1024 in
  let c = v.F.v_counts in
  Buffer.add_string buf
    (Fmt.str "campaign: %a@." F.pp_counts c);
  (let t = F.sdc_tally c in
   let w = Stats.wilson t in
   let j = Stats.jeffreys t in
   Buffer.add_string buf
     (Fmt.str
        "SDC probability: %.4f +/- %.4f (Wilson 95%%: [%.4f, %.4f]; \
         Jeffreys: [%.4f, %.4f])@."
        (if t.Stats.n = 0 then 0.0
         else float_of_int t.Stats.k /. float_of_int t.Stats.n)
        (Stats.half_width w) w.Stats.lo w.Stats.hi j.Stats.lo j.Stats.hi));
  (match latency_stats v with
  | None -> Buffer.add_string buf "detection latency: no detected faults\n"
  | Some l ->
    Buffer.add_string buf
      (Fmt.str
         "detection latency over %d detected faults: mean %.1f instrs \
          (%.1f cycles), p50 %d, p95 %d, max %d instrs@."
         l.detected l.mean_steps l.mean_cycles l.p50_steps l.p95_steps
         l.max_steps));
  (match worst_sites v with
  | [] -> ()
  | worst ->
    Buffer.add_string buf "most vulnerable sites (by SDC count):\n";
    List.iter
      (fun (i, (s : F.site_stat)) ->
        Buffer.add_string buf
          (Fmt.str "  %5d  %-44s %d sdc / %d samples (±%.3f)@." i
             (Printer.string_of_instr
                v.F.v_target.F.img.Ferrum_machine.Machine.code.(i).Instr.op)
             s.F.s_counts.F.sdc s.F.s_counts.F.samples
             (site_hw s.F.s_counts)))
      worst);
  (match v.F.v_escapes with
  | [] -> ()
  | escapes ->
    let by_reason = Hashtbl.create 8 in
    List.iter
      (fun (_, e) ->
        let k = Propagation.escape_name e in
        Hashtbl.replace by_reason k
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_reason k)))
      escapes;
    Buffer.add_string buf "escape explanations:\n";
    List.iter
      (fun e ->
        let k = Propagation.escape_name e in
        match Hashtbl.find_opt by_reason k with
        | Some n ->
          Buffer.add_string buf
            (Fmt.str "  %-24s %4d  (%s)@." k n (Propagation.escape_describe e))
        | None -> ())
      [
        Propagation.Unprotected_program;
        Propagation.Unchecked_site;
        Propagation.Masked_then_reactivated;
        Propagation.Output_before_check;
        Propagation.Memory_before_check;
        Propagation.Check_missed_taint;
      ]);
  Buffer.contents buf

let render ?only_sampled (v : F.vulnmap) =
  let eligible_sites =
    Array.fold_left (fun n e -> if e then n + 1 else n) 0 v.F.v_target.F.eligible
  in
  Fmt.str
    "Vulnerability map — %d samples over %d eligible static sites\n%s\n%s"
    v.F.v_samples eligible_sites
    (listing ?only_sampled v)
    (summary v)
