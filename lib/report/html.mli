(** Self-contained HTML dashboard over campaign run directories.

    A single file with no external assets: four inline-SVG panels —
    outcome stacked bars per workload × technique, detection-latency
    CDFs, per-site vulnerability heat strips, and the
    protection-overhead provenance split — rendered from the
    JSONL/manifest files a finished [ferrum campaign] run directory
    contains. *)

(** One loaded run directory. *)
type run

(** Load one run directory (must contain [manifest.json] and
    [injection.jsonl]; [vulnmap.jsonl] is optional). *)
val load_run : string -> (run, string) result

(** Load [dir] itself (if it is a run directory) or every immediate
    subdirectory with a manifest, sorted by name. *)
val load_runs : string -> (run list, string) result

(** Render the dashboard document. *)
val render : run list -> string

(** [load_runs] followed by {!render}. *)
val render_dir : string -> (string, string) result
