(** Self-contained HTML dashboard over campaign run directories.

    A single file with no external assets: five inline-SVG panels —
    outcome stacked bars per workload × technique, SDC-estimate
    convergence with Wilson confidence bands, detection-latency CDFs,
    per-site vulnerability heat strips, and the protection-overhead
    provenance split — rendered from the JSONL/manifest files a
    finished [ferrum campaign] run directory contains.

    The run accessors and panel builders are exposed so other pages
    (the serve daemon's cross-run history) can reuse them. *)

(** One loaded run directory. *)
type run

(** Load one run directory (must contain [manifest.json] and
    [injection.jsonl]; [vulnmap.jsonl] is optional). *)
val load_run : string -> (run, string) result

(** Load [dir] itself (if it is a run directory) or every immediate
    subdirectory with a manifest, sorted by name. *)
val load_runs : string -> (run list, string) result

(** {1 Run accessors} *)

(** One vulnerability-map site of a traced run. *)
type site = {
  si_index : int;
  si_opcode : string;
  si_prov : string;
  si_samples : int;
  si_sdc : int;
  si_detected : int;
}

val manifest : run -> Ferrum_campaign.Manifest.t
val run_dir : run -> string

(** ["BENCH.TECH"]. *)
val label : run -> string

(** Outcome class names, display order. *)
val classes : string list

val class_count : run -> string -> int

(** (site mean detection-latency cycles, detected count), ascending —
    the site-weighted latency distribution; empty when untraced. *)
val latency : run -> (float * int) list

(** Vulnerability-map sites in static-index order; empty when
    untraced. *)
val sites : run -> site list

(** Convergence trace from [stats.jsonl]: (samples spent, SDC p-hat,
    Wilson 95% lo, hi), chronological; empty when the run has no
    confidence telemetry. *)
val convergence : run -> (int * float * float * float) list

(** {1 Page building blocks} *)

(** HTML-escape text content. *)
val esc : string -> string

(** The shared stylesheet (light/dark). *)
val style : string

(** Colour-chip legend from (name, CSS variable) pairs. *)
val legend : (string * string) list -> string

(** {1 Panels} *)

val outcomes_panel : run list -> string

(** Campaign SDC estimate vs samples spent, with Wilson 95% confidence
    bands — rendered from each run's [stats.jsonl]. *)
val convergence_panel : run list -> string

val latency_panel : run list -> string
val vulnmap_panel : run list -> string
val overhead_panel : run list -> string

(** Packed span icicle (flamegraph layout) per run from each run
    directory's [trace.jsonl], with wall/CPU hover detail and a
    hottest-spans table from the [trace-wall.jsonl] sidecar; [""] when
    no run has a trace. *)
val trace_panel : run list -> string

(** Render the dashboard document. *)
val render : run list -> string

(** [load_runs] followed by {!render}. *)
val render_dir : string -> (string, string) result
