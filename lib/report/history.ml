(* Cross-run history page for the content-addressed run store.

   Rendered by the serve daemon at GET /history: every published run
   in publication order (the store index's order), an outcome/latency
   summary table, run-to-run diffs for consecutive runs of the same
   workload × technique (outcome tally deltas, latency percentile
   deltas, vulnerability-map drift), and the regular dashboard panels
   reused from Html over the stored runs. *)

module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Stats = Ferrum_telemetry.Stats
module Manifest = Ferrum_campaign.Manifest
module Store = Ferrum_campaign.Store

(* Publication-ordered digests: the index file when present, else a
   rebuild (which also writes the file). *)
let indexed_digests ~root =
  let index = Store.index_file root in
  if not (Sys.file_exists index) then Store.rebuild_index ~root
  else
    match Metrics.read_lines index with
    | _header :: records ->
      List.filter_map
        (fun line ->
          match
            Option.bind (Json.of_string_opt line) (Json.member "digest")
          with
          | Some (Json.Str d) -> Some d
          | _ -> None)
        records
    | [] -> []

(* Site-weighted latency percentile over Html's ascending
   (mean cycles, detected count) distribution. *)
let percentile q dist =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 dist in
  if total = 0 then None
  else begin
    let target = q *. float_of_int total in
    let rec walk cum = function
      | [] -> None
      | (mean, w) :: rest ->
        let cum = cum + w in
        if float_of_int cum >= target then Some mean else walk cum rest
    in
    walk 0 dist
  end

(* Vulnerability-map drift between two traced runs: sites are matched
   by static index; a site counts as drifted only when the two runs'
   Wilson 95% intervals on its SDC rate are disjoint — a moved tally
   inside overlapping intervals is sampling noise, not a shift.
   [significant] counts such sites, [magnitude] sums |SDC delta| over
   them.  [None] when either run is untraced (no map to compare). *)
let drift prev cur =
  match (Html.sites prev, Html.sites cur) with
  | [], _ | _, [] -> None
  | prev_sites, cur_sites ->
    let by_index sites =
      List.map
        (fun (s : Html.site) ->
          (s.Html.si_index, (s.Html.si_samples, s.Html.si_sdc)))
        sites
    in
    let p = by_index prev_sites and c = by_index cur_sites in
    let indices =
      List.sort_uniq compare (List.map fst p @ List.map fst c)
    in
    let at l i =
      let n, k = Option.value ~default:(0, 0) (List.assoc_opt i l) in
      (Stats.wilson { Stats.n; k }, k)
    in
    let significant, magnitude =
      List.fold_left
        (fun (n, m) i ->
          let wp, kp = at p i and wc, kc = at c i in
          if wp.Stats.hi < wc.Stats.lo || wc.Stats.hi < wp.Stats.lo then
            (n + 1, m + abs (kc - kp))
          else (n, m))
        (0, 0) indices
    in
    Some (significant, magnitude)

let short_digest d = if String.length d > 12 then String.sub d 0 12 else d

let pp_latency dist =
  match (percentile 0.5 dist, percentile 0.95 dist) with
  | Some p50, Some p95 -> Fmt.str "%.0f / %.0f" p50 p95
  | _ -> "&#8212;"

let pp_delta n = if n > 0 then Fmt.str "+%d" n else string_of_int n

(* Summary table: one row per stored run, publication order. *)
let runs_table digests runs =
  let row digest r =
    let m = Html.manifest r in
    let cells =
      [
        Fmt.str "<code>%s</code>" (Html.esc (short_digest digest));
        Html.esc (Html.label r);
        string_of_int m.Manifest.samples;
        Html.esc (Int64.to_string m.Manifest.seed);
      ]
      @ List.map
          (fun c -> string_of_int (Html.class_count r c))
          Html.classes
      @ [ pp_latency (Html.latency r) ]
    in
    Fmt.str "<tr>%s</tr>"
      (String.concat "" (List.map (Fmt.str "<td>%s</td>") cells))
  in
  let head =
    [ "run"; "workload"; "samples"; "seed" ] @ Html.classes
    @ [ "latency p50/p95" ]
  in
  Fmt.str
    "<div class=\"panel\"><h2>Published runs</h2><p class=\"sub\">One row \
     per store entry, publication order; latency percentiles are \
     site-weighted detection latencies in cycles.</p><table><tr>%s</tr>%s</table></div>"
    (String.concat ""
       (List.map (fun h -> Fmt.str "<th>%s</th>" (Html.esc h)) head))
    (String.concat "" (List.map2 row digests runs))

(* Run-to-run diffs: consecutive publications of the same workload ×
   technique (identical configurations share a digest, so consecutive
   runs of a label differ in seed, samples or knobs). *)
let diffs_table digests runs =
  let tagged = List.combine digests runs in
  let pairs =
    List.concat_map
      (fun (digest, r) ->
        let label = Html.label r in
        let earlier =
          List.filter (fun (d, p) -> d <> digest && Html.label p = label)
            (List.filteri
               (fun i _ ->
                 i
                 < Option.value ~default:0
                     (List.find_index (fun (d, _) -> d = digest) tagged))
               tagged)
        in
        match List.rev earlier with
        | (pd, prev) :: _ -> [ (pd, prev, digest, r) ]
        | [] -> [])
      tagged
  in
  if pairs = [] then ""
  else begin
    let row (pd, prev, cd, cur) =
      let delta c = pp_delta (Html.class_count cur c - Html.class_count prev c) in
      let lat_delta =
        match
          ( percentile 0.5 (Html.latency prev),
            percentile 0.5 (Html.latency cur),
            percentile 0.95 (Html.latency prev),
            percentile 0.95 (Html.latency cur) )
        with
        | Some a50, Some b50, Some a95, Some b95 ->
          Fmt.str "%+.0f / %+.0f" (b50 -. a50) (b95 -. a95)
        | _ -> "&#8212;"
      in
      let drift_cell =
        match drift prev cur with
        | Some (significant, magnitude) ->
          Fmt.str "%d significant, &#931;|&#916;sdc| %d" significant
            magnitude
        | None -> "&#8212;"
      in
      Fmt.str "<tr><td>%s</td><td><code>%s &#8594; %s</code></td>%s<td>%s</td><td>%s</td></tr>"
        (Html.esc (Html.label cur))
        (Html.esc (short_digest pd))
        (Html.esc (short_digest cd))
        (String.concat ""
           (List.map (fun c -> Fmt.str "<td>%s</td>" (delta c)) Html.classes))
        lat_delta drift_cell
    in
    let head =
      [ "workload"; "runs" ]
      @ List.map (fun c -> "&#916;" ^ c) Html.classes
      @ [ "&#916;latency p50/p95"; "vulnmap drift" ]
    in
    Fmt.str
      "<div class=\"panel\"><h2>Run-to-run diff</h2><p class=\"sub\">Each \
       workload&#8217;s consecutive publications compared: outcome tally \
       deltas, latency percentile deltas and vulnerability-map drift \
       (sites whose Wilson 95%% SDC intervals are disjoint between the \
       two runs &#8212; overlapping intervals are treated as sampling \
       noise).</p><table><tr>%s</tr>%s</table></div>"
      (String.concat "" (List.map (Fmt.str "<th>%s</th>") head))
      (String.concat "" (List.map row pairs))
  end

let empty_page =
  String.concat ""
    [
      "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
      "<title>ferrum run history</title><style>";
      Html.style;
      "</style></head><body><h1>ferrum run history</h1>";
      "<p class=\"sub\">No published runs yet. Submit a job to populate \
       the store.</p></body></html>";
    ]

let render ~root : (string, string) result =
  let digests = indexed_digests ~root in
  let loaded =
    List.filter_map
      (fun d ->
        match Html.load_run (Store.entry_dir ~root d) with
        | Ok r -> Some (d, r)
        | Error _ -> None)
      digests
  in
  match loaded with
  | [] -> Ok empty_page
  | _ ->
    let digests = List.map fst loaded and runs = List.map snd loaded in
    Ok
      (String.concat ""
         [
           "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
           "<meta name=\"viewport\" content=\"width=device-width, \
            initial-scale=1\">";
           "<title>ferrum run history</title><style>";
           Html.style;
           "</style></head><body>";
           "<h1>ferrum run history</h1>";
           Fmt.str
             "<p class=\"sub\">%d published run%s under <code>%s</code>, \
              publication order.</p>"
             (List.length runs)
             (if List.length runs = 1 then "" else "s")
             (Html.esc root);
           runs_table digests runs;
           diffs_table digests runs;
           Html.outcomes_panel runs;
           Html.latency_panel runs;
           Html.vulnmap_panel runs;
           "</body></html>";
         ])
