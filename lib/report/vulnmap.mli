(** Annotated-assembly rendering of a {!Ferrum_faultsim.Faultsim.vulnmap}.

    One listing line per static instruction — provenance, instruction
    text and, where the site was sampled, its outcome distribution and
    mean detection latency — plus a campaign summary with the
    detection-latency distribution, the most SDC-prone sites and the
    escape-explanation histogram. *)

type latency_stats = {
  detected : int;
  mean_steps : float;
  p50_steps : int;
  p95_steps : int;
  max_steps : int;
  mean_cycles : float;
}

(** Detection-latency distribution over a campaign's detected runs;
    [None] when nothing was detected. *)
val latency_stats : Ferrum_faultsim.Faultsim.vulnmap -> latency_stats option

(** The annotated listing alone.  With [only_sampled] (default false),
    unsampled lines are omitted. *)
val listing : ?only_sampled:bool -> Ferrum_faultsim.Faultsim.vulnmap -> string

(** The campaign summary alone: totals, latency distribution, worst
    sites, escape histogram. *)
val summary : Ferrum_faultsim.Faultsim.vulnmap -> string

(** Listing followed by summary. *)
val render : ?only_sampled:bool -> Ferrum_faultsim.Faultsim.vulnmap -> string
