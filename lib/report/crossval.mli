(** Cross-validation of the static uncovered-set analysis against a
    dynamic vulnerability-map campaign.

    {!Ferrum_analysis.Lint.uncovered} claims: any SDC whose escape is
    [unchecked-site] (no checker retired after the divergence),
    [output-before-check] (the corrupted output preceded the first
    post-corruption check) or [unprotected-program] (no checkers in
    the image at all) ran a check-free path from its injection site,
    so that site must be statically uncovered.  This module
    replays a seeded {!Ferrum_faultsim.Faultsim.vulnmap_campaign} and
    verifies the inclusion escape by escape. *)

open Ferrum_asm

(** An escape the static analysis failed to predict (a soundness bug if
    ever non-empty). *)
type violation = {
  x_sample : int;  (** campaign sample index *)
  x_static_index : int;  (** injected site *)
  x_escape : string;  (** escape name *)
}

type outcome = {
  c_samples : int;
  c_sdc : int;  (** SDC escapes observed in the campaign *)
  c_checkable : int;
      (** of those, classified unchecked-site or output-before-check *)
  c_confirmed : int;  (** checkable escapes inside the uncovered set *)
  c_violations : violation list;
  c_uncovered : int;  (** size of the static uncovered set *)
  c_eligible : int;  (** eligible sites in the program *)
}

val passed : outcome -> bool

(** Replay a fixed-seed campaign over the program's image and check
    every checkable escape against the static uncovered set. *)
val run : ?seed:int64 -> ?fault_bits:int -> samples:int -> Prog.t -> outcome

val pp : Format.formatter -> outcome -> unit
