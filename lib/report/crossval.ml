open Ferrum_asm
module F = Ferrum_faultsim.Faultsim
module Machine = Ferrum_machine.Machine
module Lint = Ferrum_analysis.Lint
module Propagation = F.Propagation

type violation = { x_sample : int; x_static_index : int; x_escape : string }

type outcome = {
  c_samples : int;
  c_sdc : int;
  c_checkable : int;
  c_confirmed : int;
  c_violations : violation list;
  c_uncovered : int;
  c_eligible : int;
}

let passed o = o.c_violations = []

let checkable (e : Propagation.escape) =
  match e with
  | Propagation.Unchecked_site | Propagation.Output_before_check
  (* no checkers in the image at all: every escape path is check-free *)
  | Propagation.Unprotected_program ->
    true
  | _ -> false

let run ?(seed = 2024L) ?(fault_bits = 1) ~samples (p : Prog.t) : outcome =
  let sites, eligible = Lint.uncovered p in
  let covered = Hashtbl.create 256 in
  List.iter
    (fun (s : Lint.site) -> Hashtbl.replace covered s.u_static_index ())
    sites;
  (* v_escapes is keyed by sample index; collect each sample's injected
     static site from the record stream to join the two. *)
  let site_of_sample = Hashtbl.create samples in
  let on_record (r : F.record) =
    Hashtbl.replace site_of_sample r.F.sample r.F.r_static_index
  in
  let img = Machine.load p in
  let v = F.vulnmap_campaign ~seed ~fault_bits ~on_record ~samples img in
  let checkables =
    List.filter (fun (_, e) -> checkable e) v.F.v_escapes
  in
  let confirmed = ref 0 and violations = ref [] in
  List.iter
    (fun (sample, e) ->
      let ix =
        Option.value ~default:(-1) (Hashtbl.find_opt site_of_sample sample)
      in
      if Hashtbl.mem covered ix then incr confirmed
      else
        violations :=
          { x_sample = sample; x_static_index = ix;
            x_escape = Propagation.escape_name e }
          :: !violations)
    checkables;
  {
    c_samples = samples;
    c_sdc = List.length v.F.v_escapes;
    c_checkable = List.length checkables;
    c_confirmed = !confirmed;
    c_violations = List.rev !violations;
    c_uncovered = List.length sites;
    c_eligible = eligible;
  }

let pp ppf o =
  Fmt.pf ppf
    "crossval: %d samples, %d SDC escapes, %d checkable \
     (unchecked-site/output-before-check)@."
    o.c_samples o.c_sdc o.c_checkable;
  Fmt.pf ppf "static uncovered set: %d of %d eligible sites@." o.c_uncovered
    o.c_eligible;
  if passed o then
    Fmt.pf ppf
      "PASS: all %d checkable escapes lie inside the static uncovered set@."
      o.c_confirmed
  else begin
    Fmt.pf ppf "FAIL: %d escape(s) outside the static uncovered set:@."
      (List.length o.c_violations);
    List.iter
      (fun x ->
        Fmt.pf ppf "  sample %d at static index %d (%s)@." x.x_sample
          x.x_static_index x.x_escape)
      o.c_violations
  end
