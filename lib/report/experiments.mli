(** Experiment drivers: run the benchmark suite through the four
    configurations and collect everything the paper's evaluation section
    reports — SDC coverage under fault injection (Fig. 10), cycle-model
    runtime overhead (Fig. 11) and transform time (§IV-B3).  All
    campaigns are seeded and reproducible. *)

module Machine = Ferrum_machine.Machine
module Cost = Ferrum_machine.Cost
module F = Ferrum_faultsim.Faultsim
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog

type tech_result = {
  technique : Technique.t;
  static_instructions : int;
  dyn_instructions : int;
  cycles : float;
  overhead : float;  (** cycle-model runtime overhead (Fig. 11) *)
  dyn_overhead : float;  (** raw dynamic-instruction overhead *)
  counts : F.counts option;  (** [None] when the campaign was skipped *)
  coverage : float option;  (** SDC coverage (Fig. 10) *)
  transform_seconds : float;  (** median-of-repetitions transform time *)
}

type bench_result = {
  name : string;
  suite : string;
  domain : string;
  static_raw : int;
  dyn_raw : int;
  cycles_raw : float;
  raw_counts : F.counts option;
  techniques : tech_result list;
}

type options = {
  samples : int;  (** fault injections per configuration; 0 = skip *)
  seed : int64;
  scope : F.scope;
  cost_model : Cost.model;
  ferrum_config : Ferrum_eddi.Ferrum_pass.config;
  benchmarks : string list option;  (** [None] = the whole suite *)
  shards : int;
      (** >1 runs campaigns on the fork worker pool; outcome counts are
          identical for any value, so this is purely a wall-clock knob *)
  workers : int option;  (** concurrent workers (default min shards 4) *)
}

(** 400 samples, seed 2024, original-site scope, default cost model and
    FERRUM config, all benchmarks, sequential (1 shard). *)
val default_options : options

val selected_entries : options -> Catalog.entry list

(** Median wall-clock of a protection transform over repetitions. *)
val transform_time :
  Technique.t ->
  ?ferrum_config:Ferrum_eddi.Ferrum_pass.config ->
  Ferrum_ir.Ir.modul ->
  float

val run_entry : options -> Catalog.entry -> bench_result
val run : ?options:options -> unit -> bench_result list

(** The record for one technique within a benchmark's results. *)
val find_tech : bench_result -> Technique.t -> tech_result

(** Arithmetic mean over benchmarks of a per-benchmark metric. *)
val mean_over : bench_result list -> (bench_result -> float) -> float
