(** Machine-readable export of experiment results: one CSV line per
    (benchmark, configuration) with sizes, cycles, overheads, coverage,
    transform time and raw outcome counts. *)

val csv : Experiments.bench_result list -> string

val write_csv : string -> Experiments.bench_result list -> unit

val bench_kind : string
(** ["ferrum.bench.v1"] — the whole-document schema below. *)

(** Bench metrics document: meta (sample count, seed), per-experiment
    wall times (wall clock is confined here; per-benchmark results are
    deterministic per seed), and per-benchmark results. *)
val metrics_json :
  samples:int ->
  seed:int64 ->
  experiments:(string * float) list ->
  Experiments.bench_result list ->
  Ferrum_telemetry.Json.t

val write_metrics_json :
  string ->
  samples:int ->
  seed:int64 ->
  experiments:(string * float) list ->
  Experiments.bench_result list ->
  unit
