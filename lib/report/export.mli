(** Machine-readable export of experiment results: one CSV line per
    (benchmark, configuration) with sizes, cycles, overheads, coverage,
    transform time and raw outcome counts. *)

val csv : Experiments.bench_result list -> string

val write_csv : string -> Experiments.bench_result list -> unit

val bench_kind : string
(** ["ferrum.bench.v1"] — the whole-document schema below. *)

(** One benchmark's flat-vs-adaptive allocation comparison: mean Wilson
    95% half-width (and mean samples) over the worst decile of
    vulnerability-map sites, same total budget for both schemes. *)
type adaptive_result = {
  a_benchmark : string;
  a_budget : int;
  a_rounds : int;
  a_sites : int;
  a_decile : int;
  a_flat_n : float;
  a_adaptive_n : float;
  a_flat_hw : float;
  a_adaptive_hw : float;
  a_flat_wall : float;
  a_adaptive_wall : float;
}

(** Implied sample savings of adaptive allocation: half-width scales as
    1/sqrt(n), so [1 - (adaptive_hw / flat_hw)^2] is the fraction of
    the flat budget that directed sampling saved on the worst decile. *)
val adaptive_savings : adaptive_result -> float

(** One benchmark's injection-engine throughput (samples/sec): scratch
    and pooled on the current dispatch, plus the checkpointed engine on
    both the legacy [Machine.step] loop and the pre-decoded threaded
    loop, so BENCH snapshots record the dispatch speedup. *)
type perf_result = {
  p_benchmark : string;
  p_scratch : float;
  p_pooled : float;
  p_legacy : float;
  p_predecoded : float;
}

(** [p_predecoded / p_legacy] (0 when the legacy rate is unknown). *)
val perf_speedup : perf_result -> float

(** Bench metrics document: meta (sample count, seed), per-experiment
    wall times (wall clock is confined here; per-benchmark results are
    deterministic per seed), per-benchmark results, and — when the
    comparisons ran — flat-vs-adaptive [adaptive] and per-engine
    throughput [perf] sections. *)
val metrics_json :
  ?adaptive:adaptive_result list ->
  ?perf:perf_result list ->
  samples:int ->
  seed:int64 ->
  experiments:(string * float) list ->
  Experiments.bench_result list ->
  Ferrum_telemetry.Json.t

val write_metrics_json :
  ?adaptive:adaptive_result list ->
  ?perf:perf_result list ->
  string ->
  samples:int ->
  seed:int64 ->
  experiments:(string * float) list ->
  Experiments.bench_result list ->
  unit
