(** Deterministic splitmix64 PRNG.  All randomness in fault-injection
    campaigns flows through one of these, seeded explicitly, so every
    recorded experiment is reproducible bit-for-bit. *)

type t

val create : seed:int64 -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform integer in [0, bound); raises on non-positive bounds. *)
val int : t -> int -> int

(** Derive an independent stream (per-sample reproducibility). *)
val split : t -> t

(** [split_at ~seed n] is the [n]-th (0-based) stream that [n+1]
    successive {!split}s of [create ~seed] would produce, computed
    directly — the keyed derivation that lets campaign shards address
    any sample without replaying the ones before it.  Raises on
    negative [n]. *)
val split_at : seed:int64 -> int -> t
