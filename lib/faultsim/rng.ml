(* Deterministic splitmix64 PRNG.  All randomness in fault-injection
   campaigns flows through one of these, seeded explicitly, so every
   experiment in EXPERIMENTS.md is reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let create ~seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0"
  else
    (* keep 62 bits so the value fits OCaml's 63-bit native int *)
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    v mod bound

(* Derive an independent stream, for per-sample reproducibility. *)
let split t = create ~seed:(next_int64 t)

(* The n-th (0-based) split of a fresh generator, derived directly: a
   splitmix state only ever advances by [golden_gamma] per draw, so the
   root's state at its (n+1)-th draw is [seed + (n+1)*gamma] regardless
   of what happened in between.  This is what lets a campaign shard
   start mid-stream: sample k's generator is a pure function of the
   campaign seed and k, never of the samples before it. *)
let split_at ~seed n =
  if n < 0 then invalid_arg "Rng.split_at: negative index";
  create
    ~seed:
      (mix (Int64.add seed (Int64.mul (Int64.of_int (n + 1)) golden_gamma)))
