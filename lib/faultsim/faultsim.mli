(** Assembly-level fault injection (paper §II-B, §IV-A2).

    Fault model: a single bit flip (or, for the E11 extension, several
    distinct bits) in the destination of one dynamically executed
    instruction — a general-purpose register, a 64-bit SIMD lane, or one
    of the RFLAGS bits the instruction defines — applied immediately
    after write-back.  Memory and caches are assumed ECC-protected and
    are never targets.  One fault per run; campaigns sample dynamic
    sites uniformly, as the paper does with 1000 runs per benchmark. *)

module Machine = Ferrum_machine.Machine

(** Which instructions are sampling-eligible: by default only
    [Original]-provenance ones (protection of the program itself);
    [All_sites] also targets duplicates, checkers and instrumentation
    (DESIGN.md experiment E8). *)
type scope = Original_only | All_sites

(** How injected runs execute.  All three engines produce bit-identical
    classifications, records and JSONL streams; they differ only in
    speed.  [Scratch]: a fresh state per sample, full observed prefix
    (the historical reference path).  [Pooled]: one reusable state per
    target/worker, unobserved prefix.  [Checkpointed k]: additionally
    restore the golden-run checkpoint (captured every [k] dynamic
    instructions) nearest below the flip point, paying only the
    suffix. *)
type engine = Scratch | Pooled | Checkpointed of int

(** [Checkpointed 4096]. *)
val default_engine : engine

(** ["scratch"], ["pooled"], ["ckpt-<k>"] — the form recorded in
    campaign manifests. *)
val engine_name : engine -> string

(** Inverse of {!engine_name}; [None] on unknown names. *)
val engine_of_name : string -> engine option

(** Outcome of an injected run, classified against the golden run. *)
type classification =
  | Benign  (** normal exit, output identical *)
  | Sdc  (** normal exit, output differs: silent data corruption *)
  | Detected  (** a checker fired *)
  | Crash  (** trap: wild access, divide error, wild control *)
  | Timeout  (** fuel exhausted (e.g. corrupted loop bound) *)

val classification_name : classification -> string

(** Inverse of {!classification_name}; [None] on unknown names. *)
val classification_of_name : string -> classification option

type counts = {
  samples : int;
  benign : int;
  sdc : int;
  detected : int;
  crash : int;
  timeout : int;
}

val zero_counts : counts
val add_count : counts -> classification -> counts

(** Fraction of samples that were SDC. *)
val sdc_probability : counts -> float

(** The SDC outcome as an exact binomial tally (n = samples, k = sdc),
    for the {!Ferrum_telemetry.Stats} interval estimators. *)
val sdc_tally : counts -> Ferrum_telemetry.Stats.tally

(** 95% confidence half-interval on the SDC proportion.

    @deprecated Alias for the Wilson half-width,
    [Stats.half_width (Stats.wilson (sdc_tally c))].  Historically a
    normal approximation, which degenerated to zero width at p = 0,
    p = 1 and n = 0; the Wilson interval stays honest there (n = 0
    yields 0.5 — total ignorance).  Prefer {!Ferrum_telemetry.Stats}
    directly, which also exposes both interval endpoints. *)
val confidence95 : counts -> float

val pp_counts : Format.formatter -> counts -> unit

(** Per static instruction: is it a sampling-eligible site? *)
val eligibility : Machine.image -> scope -> bool array

(** Cumulative per-process engine-phase tallies: golden walks
    (snapshot-cache builds) and the machine steps spent restoring
    checkpoints, replaying unobserved prefixes and running post-flip
    suffixes.  Deterministic for a given seed and sample set, so trace
    spans carry them as counters without breaking
    byte-reproducibility. *)
type phases = {
  mutable ph_walks : int;  (** snapshot-cache builds (golden walks) *)
  mutable ph_walk_steps : int;
  mutable ph_restores : int;  (** checkpoint/initial-state restores *)
  mutable ph_prefix_steps : int;  (** unobserved replay up to the flip *)
  mutable ph_suffix_steps : int;  (** flip + post-flip execution *)
  mutable ph_decodes : int;  (** predecode lowerings of this target *)
  mutable ph_fused_steps : int;
      (** suffix steps retired as fused superinstruction pairs; replayed
          identically by the legacy dispatch loop so trace counters stay
          byte-identical whichever dispatcher ran *)
}

(** A profiled program ready for injection.  The trailing mutable
    fields lazily cache the checkpoint set and the pooled run states;
    they are built on first sample in each process (so each forked
    campaign worker builds its own, amortized over its shard range). *)
type target = {
  img : Machine.image;
  eligible : bool array;
  golden_output : int64 list;
  golden_steps : int;
  golden_cycles : float;
  eligible_steps : int;  (** dynamic count of eligible write-backs *)
  dyn_static : int array;
      (** static site of each eligible dynamic write-back, in dynamic
          order (length [eligible_steps]) *)
  fuel : int;  (** injected-run budget: 3x golden + slack *)
  engine : engine;
  mutable cache_ : Ferrum_machine.Snapshot.cache option;
  mutable slot_ : Ferrum_machine.Snapshot.slot option;
  mutable golden_slot_ : Ferrum_machine.Snapshot.slot option;
  mutable occ_ : int array array option;
  mutable pre_ : Ferrum_machine.Predecode.t option;
  phases : phases;
}

(** This process's engine-phase tallies for [target]. *)
val phases : target -> phases

(** The target's pre-decoded program (lowered lazily, once per process).
    The eligible-site mask is the fusion [avoid] set, so injection
    sites never sit in the second half of a superinstruction. *)
val predecoded : target -> Ferrum_machine.Predecode.t

(** Zero the tallies (each campaign worker resets at startup so its
    shard's counters cover exactly its own work). *)
val reset_phases : target -> unit

exception Golden_failure of string

(** Profile the fault-free run.  Raises {!Golden_failure} if it does not
    exit normally.  [engine] (default {!default_engine}) selects how
    {!campaign_sample}/{!vulnmap_sample} execute. *)
val prepare : ?scope:scope -> ?engine:engine -> Machine.image -> target

(** Static sites with at least one eligible dynamic occurrence,
    ascending — the population adaptive allocation draws from. *)
val site_candidates : target -> int array

(** Structured description of a flipped destination: kind, register
    index, lane, flag — mirrored into the metrics stream so analysis
    never parses [dest_desc]. *)
type dest_info =
  | Igpr of Ferrum_asm.Reg.gpr * Ferrum_asm.Reg.size
  | Isimd of int * int  (** register, 64-bit lane *)
  | Iflag of Ferrum_asm.Cond.flag

(** Description of one injected fault. *)
type fault = {
  dyn_index : int;  (** which eligible dynamic write-back *)
  static_index : int;
  dest_desc : string;  (** e.g. "%rax", "%xmm15[1]", "flags.ZF" *)
  dest_info : dest_info option;  (** [None] when the site was unreached *)
  bit : int;  (** first flipped bit *)
}

(** Run once, flipping [fault_bits] (default 1) distinct bits of one
    destination of the [dyn_index]-th eligible write-back. *)
val inject :
  ?fault_bits:int -> target -> Rng.t -> dyn_index:int ->
  classification * fault

(** Like {!inject}, but also returns the final machine state, calls
    [on_inject] right after the bit flip (with the corrupted state), and
    calls [observe] (e.g. {!Ferrum_machine.Flight.observe}) after the
    injection logic on every retired instruction, so it sees post-flip
    state. *)
val inject_full :
  ?fault_bits:int ->
  ?on_inject:(Machine.state -> unit) ->
  ?observe:(Machine.state -> int -> unit) ->
  target -> Rng.t -> dyn_index:int ->
  classification * fault * Machine.state

(** {1 Per-injection records (campaign metrics)}

    One structured record per injected run — site, opcode, destination,
    bit, classification, dynamic cost — for streaming JSONL export.
    Records carry no wall-clock values, so a campaign's record stream is
    byte-identical for a given seed. *)

type record = {
  sample : int;  (** 0-based injection number within the campaign *)
  r_dyn_index : int;
  r_static_index : int;  (** static site, -1 when unreached *)
  opcode : string;  (** mnemonic of the targeted instruction *)
  dest : string;  (** e.g. "%rax", "%xmm15[1]", "flags.ZF" *)
  r_dest : dest_info option;  (** structured view of [dest] *)
  r_bit : int;
  r_class : classification;
  steps : int;  (** dynamic instructions of the injected run *)
  cycles : float;  (** model cycles of the injected run *)
}

val record_to_json : record -> Ferrum_telemetry.Json.t

(** Schema of one record line, for `ferrum metrics` and the smoke
    check. *)
val record_fields : Ferrum_telemetry.Metrics.field list

(** v1 record schema (no structured destination), for validating files
    written before the v2 bump. *)
val record_fields_v1 : Ferrum_telemetry.Metrics.field list

(** Schema name of injection-campaign metrics files
    (["ferrum.injection.v2"]: v1 plus the structured
    [dest_kind]/[dest_reg]/[dest_lane]/[dest_flag] coordinates). *)
val metrics_kind : string

val metrics_kind_v1 : string

type campaign_result = {
  counts : counts;
  target : target;
  faults : (classification * fault) list;  (** newest first *)
}

(** One campaign sample, addressed by its global 0-based index.  The
    per-sample RNG is a pure function of [seed] and [sample]
    ({!Rng.split_at}), so any subrange of a campaign can run anywhere —
    a shard needs only its index range — and still reproduce the
    sequential run bit-for-bit.

    [site] (default -1) aims the sample: negative draws uniformly over
    all eligible dynamic write-backs (the flat campaign), a static site
    index draws uniformly over that site's occurrences (the adaptive
    allocator).  Either way exactly one draw is consumed before the
    bit choice, so the rest of the per-sample stream is identical
    across policies. *)
val campaign_sample :
  ?fault_bits:int -> ?site:int -> target -> seed:int64 -> sample:int ->
  classification * fault * record

(** Sample [samples] single-fault runs; bit-reproducible per seed.
    [on_record] streams one {!record} per injection in sample order;
    [progress] is called after every sample with [done_so_far total];
    [on_stats] observes the running outcome counts every [samples/32]
    injections and at the end — the per-batch confidence hook. *)
val campaign :
  ?scope:scope -> ?seed:int64 -> ?fault_bits:int -> ?engine:engine ->
  ?on_record:(record -> unit) -> ?progress:(int -> int -> unit) ->
  ?on_stats:(spent:int -> counts -> unit) ->
  samples:int -> Machine.image -> campaign_result

(** {1 Adaptive sample allocation}

    FastFlip-style uncertainty-directed sampling: run the campaign in
    rounds, and spend each round's samples on the static sites whose
    SDC estimates are least certain. *)

(** [rounds] budget slices (default 8); [target_ci] > 0 stops early (at
    round granularity) once every candidate site's Wilson half-width is
    at or under the target (default 0: always spend the budget). *)
type policy = { rounds : int; target_ci : float }

val default_policy : policy

(** Contiguous global-sample ranges [(lo, hi)] for the rounds:
    near-equal, first [budget mod rounds] rounds one larger, clamped so
    every round is non-empty.  Empty on a non-positive budget. *)
val plan_rounds : rounds:int -> budget:int -> (int * int) array

(** Allocate [n] samples over {!site_candidates}, proportionally to the
    Wilson half-widths of their current SDC tallies ([tally site]),
    largest-remainder apportioned with ties to the lower static index.
    Returns the per-sample site assignment, sites ascending with
    multiplicity — a pure function of the tallies, hence
    byte-reproducible for any shard count. *)
val allocate :
  target -> tally:(int -> Ferrum_telemetry.Stats.tally) -> n:int ->
  int array

(** SDC coverage relative to the raw baseline (paper §IV-A3):
    [(p_raw - p_prot) / p_raw], clamped to [0; 1]. *)
val sdc_coverage : raw:counts -> protected_:counts -> float

(** Runtime overhead (paper §IV-A3): [(prot - raw) / raw]. *)
val overhead : raw_cycles:float -> prot_cycles:float -> float

(** {1 Propagation tracing}

    Lockstep replay against the golden run; see
    {!Ferrum_telemetry.Propagation}. *)

module Propagation = Ferrum_telemetry.Propagation

(** Like {!inject_full}, but with the golden run executing in lockstep:
    also returns the propagation summary — first architectural
    divergence, taint spread, detection latency, and the escape timeline
    for SDCs. *)
val trace_propagation :
  ?fault_bits:int -> target -> Rng.t -> dyn_index:int ->
  classification * fault * Propagation.summary

(** {1 Per-static-instruction vulnerability maps}

    A campaign aggregated by static injection site: outcome distribution
    and mean detection latency per instruction (FastFlip's unit of
    analysis), exportable as [ferrum.vulnmap.v1] JSONL. *)

(** Outcome distribution and summed detection latency of one site. *)
type site_stat = {
  s_counts : counts;
  s_det_steps : int;  (** summed detection latency of detected runs *)
  s_det_cycles : float;
}

type vulnmap = {
  v_target : target;
  v_sites : site_stat array;  (** indexed by static instruction *)
  v_counts : counts;  (** whole-campaign totals *)
  v_samples : int;
  v_latencies : (int * float) list;
      (** (steps, cycles) of every detected run, in sample order *)
  v_escapes : (int * Propagation.escape) list;
      (** sample index and explanation of every SDC, in sample order *)
}

(** One traced campaign sample, addressed by its global index — the
    same RNG stream as {!campaign_sample}, so the record stream is
    byte-identical whether or not tracing is on. *)
val vulnmap_sample :
  ?fault_bits:int -> ?site:int -> target -> seed:int64 -> sample:int ->
  classification * fault * record * Propagation.summary

(** Incremental vulnerability-map aggregation.  Feed samples in global
    order: the latency cycle sums are floating-point, so only an
    identical fold order reproduces the sequential map byte-for-byte —
    this is what a sharded campaign's merge step uses. *)
type vulnmap_builder

val vulnmap_builder : target -> vulnmap_builder

(** Add one sample's outcome.  [latency] is the detection latency of a
    [Detected] run ([None] otherwise); [escape] the explanation of an
    [Sdc] ([None] otherwise). *)
val vulnmap_add :
  vulnmap_builder -> sample:int -> static_index:int -> classification ->
  latency:(int * float) option -> escape:Propagation.escape option -> unit

val vulnmap_build : vulnmap_builder -> vulnmap

(** Sample exactly as {!campaign} does (same seed, same faults), but
    trace each injection and aggregate per static site.  [on_record]
    streams the same per-injection records as {!campaign}. *)
val vulnmap_campaign :
  ?scope:scope -> ?seed:int64 -> ?fault_bits:int -> ?engine:engine ->
  ?on_record:(record -> unit) -> ?progress:(int -> int -> unit) ->
  ?on_stats:(spent:int -> counts -> unit) ->
  samples:int -> Machine.image -> vulnmap

(** Mean detection latency (steps, cycles) of a site; [None] when no
    injection there was detected. *)
val mean_latency : site_stat -> (float * float) option

(** One JSON object per eligible (or hit) site, ordered by static index;
    byte-identical for a given seed. *)
val vulnmap_rows : vulnmap -> Ferrum_telemetry.Json.t list

(** Schema of one vulnerability-map row. *)
val vulnmap_fields : Ferrum_telemetry.Metrics.field list

(** Schema name of vulnerability-map metrics files. *)
val vulnmap_kind : string
