(* Assembly-level fault injection (paper §II-B, §IV-A2).

   Fault model: a single bit flip in the destination of one dynamically
   executed instruction — a general-purpose register, a 64-bit SIMD
   lane, or one of the RFLAGS bits the instruction defines — applied
   immediately after write-back.  Memory and caches are assumed
   ECC-protected and are not injection targets.

   Site scope: by default only [Original]-provenance instructions are
   sampled (the campaign measures protection of the program itself); the
   [All_sites] scope includes duplicates, checkers and instrumentation
   (experiment E8 in DESIGN.md). *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Snapshot = Ferrum_machine.Snapshot
module Predecode = Ferrum_machine.Predecode

type scope = Original_only | All_sites

(* How injected runs execute.  All three produce bit-identical
   classifications, records and JSONL streams; they differ only in
   speed.  [Scratch] is the historical reference path: a fresh 1 MiB
   state per sample, the whole prefix re-executed under the observer.
   [Pooled] reuses one state per target/worker (dirty pages undone
   incrementally) and runs the pre-flip prefix unobserved.
   [Checkpointed k] additionally restores the golden-run checkpoint
   nearest below the sampled flip point, so each sample pays only the
   suffix. *)
type engine = Scratch | Pooled | Checkpointed of int

let default_engine = Checkpointed 4096

let engine_name = function
  | Scratch -> "scratch"
  | Pooled -> "pooled"
  | Checkpointed k -> Printf.sprintf "ckpt-%d" k

let engine_of_name s =
  match s with
  | "scratch" -> Some Scratch
  | "pooled" -> Some Pooled
  | _ ->
    let prefix = "ckpt-" in
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      match int_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some k when k >= 1 -> Some (Checkpointed k)
      | _ -> None
    else None

(* Outcome of one injected run, classified against the golden run. *)
type classification =
  | Benign (* normal exit, output identical *)
  | Sdc (* normal exit, output differs: silent data corruption *)
  | Detected (* a checker fired *)
  | Crash (* trap: wild access, divide error, wild control *)
  | Timeout (* fuel exhausted (e.g. corrupted loop bound) *)

let classification_name = function
  | Benign -> "benign"
  | Sdc -> "sdc"
  | Detected -> "detected"
  | Crash -> "crash"
  | Timeout -> "timeout"

let classification_of_name = function
  | "benign" -> Some Benign
  | "sdc" -> Some Sdc
  | "detected" -> Some Detected
  | "crash" -> Some Crash
  | "timeout" -> Some Timeout
  | _ -> None

type counts = {
  samples : int;
  benign : int;
  sdc : int;
  detected : int;
  crash : int;
  timeout : int;
}

let zero_counts =
  { samples = 0; benign = 0; sdc = 0; detected = 0; crash = 0; timeout = 0 }

let add_count c = function
  | Benign -> { c with samples = c.samples + 1; benign = c.benign + 1 }
  | Sdc -> { c with samples = c.samples + 1; sdc = c.sdc + 1 }
  | Detected -> { c with samples = c.samples + 1; detected = c.detected + 1 }
  | Crash -> { c with samples = c.samples + 1; crash = c.crash + 1 }
  | Timeout -> { c with samples = c.samples + 1; timeout = c.timeout + 1 }

let sdc_probability c =
  if c.samples = 0 then 0.0 else float_of_int c.sdc /. float_of_int c.samples

module Stats = Ferrum_telemetry.Stats

let sdc_tally c : Stats.tally = { Stats.n = c.samples; k = c.sdc }

(* 95% confidence half-interval on the SDC proportion.  Historically a
   normal approximation, which degenerates to zero width at p = 0,
   p = 1 and n = 0 — exactly the regimes protected campaigns live in.
   Now the Wilson half-width ({!Stats.wilson}): n = 0 is total
   ignorance (0.5), and one-sided counts keep the width the sample
   size actually supports.  Kept under its old name as an alias. *)
let confidence95 c = Stats.half_width (Stats.wilson (sdc_tally c))

let pp_counts ppf c =
  Fmt.pf ppf "n=%d benign=%d sdc=%d detected=%d crash=%d timeout=%d"
    c.samples c.benign c.sdc c.detected c.crash c.timeout

(* ------------------------------------------------------------------ *)
(* Site eligibility.                                                   *)
(* ------------------------------------------------------------------ *)

(* Per static instruction: is it a sampling-eligible injection site? *)
let eligibility (img : Machine.image) scope =
  Array.mapi
    (fun i (ins : Instr.ins) ->
      let prov_ok =
        match scope with
        | All_sites -> true
        | Original_only -> ins.prov = Instr.Original
      in
      prov_ok && img.Machine.dests.(i) <> [])
    img.Machine.code

(* Cumulative engine-phase tallies for one process: how many golden
   walks (snapshot-cache builds) ran and how many machine steps went
   into each phase of the fast engines — checkpoint restores, replayed
   prefixes, post-flip suffixes.  Deterministic for a given seed and
   sample set, so campaign trace spans can carry them as counters
   without breaking byte-reproducibility.  Reset per worker process
   ({!reset_phases}) so a shard's tally covers exactly its own work. *)
type phases = {
  mutable ph_walks : int; (* snapshot-cache builds (golden walks) *)
  mutable ph_walk_steps : int;
  mutable ph_restores : int; (* checkpoint/initial-state restores *)
  mutable ph_prefix_steps : int; (* unobserved replay up to the flip *)
  mutable ph_suffix_steps : int; (* flip + post-flip execution *)
  mutable ph_decodes : int; (* predecode lowerings of this target *)
  mutable ph_fused_steps : int; (* suffix steps retired as fused pairs *)
}

let zero_phases () =
  {
    ph_walks = 0;
    ph_walk_steps = 0;
    ph_restores = 0;
    ph_prefix_steps = 0;
    ph_suffix_steps = 0;
    ph_decodes = 0;
    ph_fused_steps = 0;
  }

(* A profiled program ready for injection.  The checkpoint cache and the
   pooled slots are built lazily on first use and never cross process
   boundaries usefully by reference — a forked campaign worker that
   inherits a not-yet-built cache builds its own, amortized over its
   whole shard range. *)
type target = {
  img : Machine.image;
  eligible : bool array;
  golden_output : int64 list;
  golden_steps : int;
  golden_cycles : float;
  eligible_steps : int; (* dynamic count of eligible write-backs *)
  dyn_static : int array; (* static site of each eligible write-back *)
  fuel : int;
  engine : engine;
  mutable cache_ : Snapshot.cache option; (* lazy, per process *)
  mutable slot_ : Snapshot.slot option; (* pooled injected-run state *)
  mutable golden_slot_ : Snapshot.slot option; (* pooled lockstep golden *)
  mutable occ_ : int array array option; (* lazy per-site occurrences *)
  mutable pre_ : Predecode.t option; (* lazy pre-decoded program *)
  phases : phases; (* per-process engine-phase tallies *)
}

let phases (t : target) = t.phases

let reset_phases (t : target) =
  let p = t.phases in
  p.ph_walks <- 0;
  p.ph_walk_steps <- 0;
  p.ph_restores <- 0;
  p.ph_prefix_steps <- 0;
  p.ph_suffix_steps <- 0;
  p.ph_decodes <- 0;
  p.ph_fused_steps <- 0

exception Golden_failure of string

(* Profile the fault-free run: output, step count, and the number of
   eligible dynamic injection sites. *)
let prepare ?(scope = Original_only) ?(engine = default_engine)
    (img : Machine.image) : target =
  let eligible = eligibility img scope in
  let count = ref 0 in
  let rev_sites = ref [] in
  let on_step _st idx =
    if eligible.(idx) then begin
      incr count;
      rev_sites := idx :: !rev_sites
    end
  in
  let st = Machine.fresh_state img in
  let outcome = Predecode.exec_observed ~on_step (Predecode.get img) st in
  match outcome with
  | Machine.Exit out ->
    {
      img;
      eligible;
      golden_output = out;
      golden_steps = st.Machine.steps;
      golden_cycles = st.Machine.cycles;
      eligible_steps = !count;
      dyn_static = Array.of_list (List.rev !rev_sites);
      fuel = (st.Machine.steps * 3) + 100_000;
      engine;
      cache_ = None;
      slot_ = None;
      golden_slot_ = None;
      occ_ = None;
      pre_ = None;
      phases = zero_phases ();
    }
  | o ->
    raise
      (Golden_failure (Fmt.str "golden run did not exit: %a" Machine.pp_outcome o))

(* Per-site occurrence table: the ascending dynamic ordinals of each
   static site's eligible write-backs, inverted from [dyn_static] on
   first use.  This is what lets the adaptive allocator aim a sample at
   a chosen static site while the injection machinery keeps addressing
   faults by dynamic ordinal. *)
let occurrences (t : target) : int array array =
  match t.occ_ with
  | Some o -> o
  | None ->
    let nstatic = Array.length t.img.Machine.code in
    let counts = Array.make nstatic 0 in
    Array.iter (fun site -> counts.(site) <- counts.(site) + 1) t.dyn_static;
    let occ = Array.init nstatic (fun i -> Array.make counts.(i) 0) in
    let fill = Array.make nstatic 0 in
    Array.iteri
      (fun dyn site ->
        occ.(site).(fill.(site)) <- dyn;
        fill.(site) <- fill.(site) + 1)
      t.dyn_static;
    t.occ_ <- Some occ;
    occ

(* Static sites with at least one eligible dynamic occurrence,
   ascending — the population adaptive allocation draws from. *)
let site_candidates (t : target) : int array =
  let occ = occurrences t in
  let out = ref [] in
  for i = Array.length occ - 1 downto 0 do
    if Array.length occ.(i) > 0 then out := i :: !out
  done;
  Array.of_list !out

let cache (t : target) =
  match t.cache_ with
  | Some c -> c
  | None ->
    let interval =
      match t.engine with
      | Checkpointed k -> Some k
      | Scratch | Pooled -> None
    in
    let c = Snapshot.build ?interval ~counted:(fun i -> t.eligible.(i)) t.img in
    t.phases.ph_walks <- t.phases.ph_walks + 1;
    t.phases.ph_walk_steps <- t.phases.ph_walk_steps + t.golden_steps;
    t.cache_ <- Some c;
    c

let slot (t : target) =
  match t.slot_ with
  | Some s -> s
  | None ->
    let s = Snapshot.make_slot (cache t) in
    t.slot_ <- Some s;
    s

let golden_slot (t : target) =
  match t.golden_slot_ with
  | Some s -> s
  | None ->
    let s = Snapshot.make_slot (cache t) in
    t.golden_slot_ <- Some s;
    s

(* The target's pre-decoded program, lowered once per process (forked
   workers inherit a decoded parent handle for free).  The eligible-site
   mask is passed as the fusion [avoid] set so no injection site ever
   sits in the second half of a superinstruction. *)
let predecoded (t : target) =
  match t.pre_ with
  | Some p -> p
  | None ->
    let p = Predecode.decode ~avoid:t.eligible t.img in
    t.phases.ph_decodes <- t.phases.ph_decodes + 1;
    t.pre_ <- Some p;
    p

(* ------------------------------------------------------------------ *)
(* One injection.                                                      *)
(* ------------------------------------------------------------------ *)

(* Structured description of the flipped destination, mirrored into the
   metrics stream so downstream analysis never has to parse
   [dest_desc]. *)
type dest_info =
  | Igpr of Reg.gpr * Reg.size
  | Isimd of int * int (* register, 64-bit lane *)
  | Iflag of Cond.flag

(* Description of a single fault, for logging and tests. *)
type fault = {
  dyn_index : int; (* which eligible dynamic write-back *)
  static_index : int; (* filled during the run *)
  dest_desc : string;
  dest_info : dest_info option; (* None when the site was unreached *)
  bit : int; (* first flipped bit *)
}

(* Draw [n] distinct values below [bound]. *)
let distinct_below rng ~n ~bound =
  let n = min n bound in
  let rec go acc =
    if List.length acc >= n then acc
    else
      let v = Rng.int rng bound in
      if List.mem v acc then go acc else go (v :: acc)
  in
  go []

(* Flip [bits] distinct bits of the destination — the paper's model uses
   single flips; [bits > 1] reproduces its multiple-bit-upset future
   work (DESIGN.md E11). *)
let flip_dest ?(bits = 1) rng st (dest : Instr.dest) =
  match dest with
  | Instr.Dgpr (r, s) ->
    let positions = distinct_below rng ~n:bits ~bound:(Reg.size_bits s) in
    List.iter (fun bit -> Machine.flip_gpr st r s ~bit) positions;
    (Printf.sprintf "%%%s" (Reg.gpr_name r s), Igpr (r, s), List.hd positions)
  | Instr.Dsimd (x, lanes) ->
    let lane = List.nth lanes (Rng.int rng (List.length lanes)) in
    let positions = distinct_below rng ~n:bits ~bound:64 in
    List.iter (fun bit -> Machine.flip_simd_lane st x ~lane ~bit) positions;
    ( Printf.sprintf "%%%s[%d]" (Reg.xmm_name x) lane,
      Isimd (x, lane),
      List.hd positions )
  | Instr.Dflags flags ->
    let picks = distinct_below rng ~n:bits ~bound:(List.length flags) in
    List.iter (fun i -> Machine.flip_flag st (List.nth flags i)) picks;
    let f = List.nth flags (List.hd picks) in
    let name =
      match f with
      | Cond.ZF -> "ZF" | Cond.SF -> "SF" | Cond.CF -> "CF" | Cond.OF -> "OF"
    in
    (Printf.sprintf "flags.%s" name, Iflag f, 0)

(* Run the target once, flipping one bit at the [dyn_index]-th eligible
   write-back.  [on_inject] is called right after the flip with the
   already-corrupted state; [observe] (e.g. a {!Ferrum_machine.Flight}
   recorder or a {!Ferrum_telemetry.Propagation} tracer) is called after
   the injection logic on every retired instruction, so it sees
   post-flip state.  Returns the classification, the fault description
   and the final machine state. *)
let classify (t : target) = function
  | Machine.Exit out ->
    if
      List.compare_lengths out t.golden_output = 0
      && List.for_all2 Int64.equal out t.golden_output
    then Benign
    else Sdc
  | Machine.Detected -> Detected
  | Machine.Crash _ -> Crash
  | Machine.Timeout -> Timeout

(* The fault record of a run that ended before the chosen site was
   reached (possible only if dyn_index is out of range). *)
let unreached_fault dyn_index =
  { dyn_index; static_index = -1; dest_desc = "unreached"; dest_info = None;
    bit = -1 }

(* Pick a destination of the instruction at [idx] and flip [fault_bits]
   bits of it — exactly the RNG draws {!inject_full}'s observer makes,
   in the same order. *)
let apply_flip ~fault_bits (t : target) rng st ~dyn_index idx : fault =
  let dests = t.img.Machine.dests.(idx) in
  let d = List.nth dests (Rng.int rng (List.length dests)) in
  let dest_desc, info, bit = flip_dest ~bits:fault_bits rng st d in
  { dyn_index; static_index = idx; dest_desc; dest_info = Some info; bit }

let inject_full ?(fault_bits = 1) ?on_inject ?observe (t : target) rng
    ~dyn_index : classification * fault * Machine.state =
  let st = Machine.fresh_state t.img in
  let seen = ref 0 in
  let fault = ref None in
  let flip_steps = ref (-1) in
  let on_step mstate idx =
    if t.eligible.(idx) then begin
      if !seen = dyn_index then begin
        flip_steps := mstate.Machine.steps;
        fault := Some (apply_flip ~fault_bits t rng mstate ~dyn_index idx);
        match on_inject with Some f -> f mstate | None -> ()
      end;
      incr seen
    end;
    match observe with Some f -> f mstate idx | None -> ()
  in
  let outcome = Predecode.exec_observed ~fuel:t.fuel ~on_step (predecoded t) st in
  (* Phase accounting for the scratch engine: everything up to the flip
     is prefix, the rest suffix (an unreached site is all prefix). *)
  let pre = if !flip_steps >= 0 then !flip_steps else st.Machine.steps in
  t.phases.ph_prefix_steps <- t.phases.ph_prefix_steps + pre;
  t.phases.ph_suffix_steps <-
    t.phases.ph_suffix_steps + (st.Machine.steps - pre);
  let cls = classify t outcome in
  let fault =
    match !fault with Some f -> f | None -> unreached_fault dyn_index
  in
  (cls, fault, st)

(* ------------------------------------------------------------------ *)
(* Fast injection: pooled states, unobserved prefix, checkpoints.      *)
(* ------------------------------------------------------------------ *)

(* Execute [st] unobserved until it is positioned at the flip site —
   the next instruction is eligible and [!seen = dyn_index] — or the
   run ends first.  Returns [None] when positioned (the flip
   instruction has *not* executed yet; {!Machine.step} reports the
   pre-step ip, so stopping on [st.ip] is exact), or [Some outcome]
   mirroring {!Machine.run}'s fuel / wild-control / halt / trap
   semantics, in {!Machine.run}'s check order (fuel before bounds).
   Rides the pre-decoded single-step dispatch: never fused, so the
   stop-at-site check runs before every instruction. *)
let rec run_prefix (t : target) pre len st seen ~dyn_index =
  if st.Machine.steps >= t.fuel then Some Machine.Timeout
  else
    let ip = st.Machine.ip in
    if ip >= len || ip < 0 then
      Some (Machine.Crash (Printf.sprintf "control reached 0x%x" ip))
    else if t.eligible.(ip) && !seen = dyn_index then None
    else
      match Predecode.step1 pre st with
      | exception Machine.Halt o -> Some o
      | exception Machine.Trap m -> Some (Machine.Crash m)
      | idx ->
        if t.eligible.(idx) then incr seen;
        run_prefix t pre len st seen ~dyn_index

(* {!inject_full}'s exact semantics on a pooled, checkpoint-restored
   state: restore the nearest checkpoint at or below the flip point, run
   the remaining prefix unobserved, execute the flip instruction, flip,
   and run the suffix.  Steps, cycles and fuel all count from program
   start because the restored checkpoint carries them.  The returned
   state is the pooled slot's — valid until the next sample. *)
let inject_fast ~fault_bits (t : target) rng ~dyn_index :
    classification * fault * Machine.state =
  let sl = slot t in
  let seen = ref (Snapshot.restore sl ~dyn_index) in
  let st = Snapshot.state sl in
  let pre = predecoded t in
  t.phases.ph_restores <- t.phases.ph_restores + 1;
  let s0 = st.Machine.steps in
  let prefix_done () =
    t.phases.ph_prefix_steps <- t.phases.ph_prefix_steps + (st.Machine.steps - s0)
  in
  match run_prefix t pre (Array.length t.img.Machine.code) st seen ~dyn_index
  with
  | Some o ->
    prefix_done ();
    (classify t o, unreached_fault dyn_index, st)
  | None -> (
    prefix_done ();
    let s1 = st.Machine.steps in
    let suffix_done () =
      t.phases.ph_suffix_steps <-
        t.phases.ph_suffix_steps + (st.Machine.steps - s1)
    in
    let idx = st.Machine.ip in
    match Predecode.step1 pre st with
    | _retired ->
      let fault = apply_flip ~fault_bits t rng st ~dyn_index idx in
      let f0 = Predecode.fused_steps () in
      let outcome = Predecode.exec ~fuel:t.fuel pre st in
      t.phases.ph_fused_steps <-
        t.phases.ph_fused_steps + (Predecode.fused_steps () - f0);
      suffix_done ();
      (classify t outcome, fault, st)
    | exception Machine.Halt o ->
      (* Unreachable in practice — halting instructions define no
         destinations, so they are never eligible — but mirror
         {!Machine.run}, whose observer fires on the halting step. *)
      let fault = apply_flip ~fault_bits t rng st ~dyn_index idx in
      suffix_done ();
      (classify t o, fault, st)
    | exception Machine.Trap m ->
      (* A trapped step is never observed by {!Machine.run}: no flip,
         no RNG draws, the fault stays unreached. *)
      suffix_done ();
      (classify t (Machine.Crash m), unreached_fault dyn_index, st))

let inject ?fault_bits (t : target) rng ~dyn_index : classification * fault =
  let cls, fault, _st = inject_full ?fault_bits t rng ~dyn_index in
  (cls, fault)

(* ------------------------------------------------------------------ *)
(* Per-injection records (campaign metrics).                           *)
(* ------------------------------------------------------------------ *)

module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics

(* Everything needed to attribute one injected run's outcome to a
   specific instruction, destination and bit — the raw material of
   FastFlip-style compositional analysis.  No wall-clock values:
   [cycles] are model cycles, so same-seed campaigns export
   byte-identical record streams. *)
type record = {
  sample : int; (* 0-based injection number within the campaign *)
  r_dyn_index : int; (* which eligible dynamic write-back *)
  r_static_index : int; (* static site, -1 when unreached *)
  opcode : string; (* mnemonic of the targeted instruction *)
  dest : string; (* e.g. "%rax", "%xmm15[1]", "flags.ZF" *)
  r_dest : dest_info option; (* structured view of [dest] *)
  r_bit : int;
  r_class : classification;
  steps : int; (* dynamic instructions of the injected run *)
  cycles : float; (* model cycles of the injected run *)
}

(* RFLAGS bit positions of the flags the machine models. *)
let flag_bit = function
  | Cond.CF -> 0
  | Cond.ZF -> 6
  | Cond.SF -> 7
  | Cond.OF -> 11

(* The structured destination, flattened: kind, register index (GPR
   encoding or SIMD register number), 64-bit lane, RFLAGS bit.  Unused
   coordinates are -1. *)
let dest_info_fields = function
  | Some (Igpr (r, _)) -> ("gpr", Reg.gpr_index r, -1, -1)
  | Some (Isimd (x, lane)) -> ("simd", x, lane, -1)
  | Some (Iflag f) -> ("flags", -1, -1, flag_bit f)
  | None -> ("none", -1, -1, -1)

let record_to_json r =
  let dest_kind, dest_reg, dest_lane, dest_flag = dest_info_fields r.r_dest in
  Json.Obj
    [
      ("sample", Json.Int r.sample);
      ("dyn_index", Json.Int r.r_dyn_index);
      ("static_index", Json.Int r.r_static_index);
      ("opcode", Json.Str r.opcode);
      ("dest", Json.Str r.dest);
      ("dest_kind", Json.Str dest_kind);
      ("dest_reg", Json.Int dest_reg);
      ("dest_lane", Json.Int dest_lane);
      ("dest_flag", Json.Int dest_flag);
      ("bit", Json.Int r.r_bit);
      ("class", Json.Str (classification_name r.r_class));
      ("steps", Json.Int r.steps);
      ("cycles", Json.Float r.cycles);
    ]

(* Schema of one v1 record line: everything but the structured
   destination.  Kept so `ferrum metrics` still validates files written
   before the v2 bump. *)
let record_fields_v1 =
  Metrics.
    [
      field "sample" F_int;
      field "dyn_index" F_int;
      field "static_index" F_int;
      field "opcode" F_string;
      field "dest" F_string;
      field "bit" F_int;
      field "class" F_string;
      field "steps" F_int;
      field "cycles" F_float;
    ]

(* Schema of one record line, for `ferrum metrics` and the smoke
   check. *)
let record_fields =
  record_fields_v1
  @ Metrics.
      [
        field "dest_kind" F_string;
        field "dest_reg" F_int;
        field "dest_lane" F_int;
        field "dest_flag" F_int;
      ]

let metrics_kind = "ferrum.injection.v2"
let metrics_kind_v1 = "ferrum.injection.v1"

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                          *)
(* ------------------------------------------------------------------ *)

type campaign_result = {
  counts : counts;
  target : target;
  faults : (classification * fault) list; (* newest first *)
}

(* The record of one injected run, shared by the plain and the traced
   campaign paths (a traced run's [end_steps]/[end_cycles] are the final
   state's, so both paths render byte-identical record streams). *)
let make_record (t : target) ~sample cls (fault : fault) ~steps ~cycles :
    record =
  let opcode =
    if fault.static_index < 0 then "?"
    else Instr.mnemonic t.img.Machine.code.(fault.static_index).Instr.op
  in
  {
    sample;
    r_dyn_index = fault.dyn_index;
    r_static_index = fault.static_index;
    opcode;
    dest = fault.dest_desc;
    r_dest = fault.dest_info;
    r_bit = fault.bit;
    r_class = cls;
    steps;
    cycles;
  }

(* Where sample [site] aims: uniform over all eligible dynamic
   write-backs by default (site = -1, the flat campaign), or uniform
   over one static site's occurrences when the adaptive allocator has
   assigned the sample there.  Either way the draw consumes exactly one
   [Rng.int] from the per-sample stream, so the remaining stream (bit
   choice, etc.) is identical across policies. *)
let sample_dyn_index (t : target) rng ~site =
  if site < 0 then Rng.int rng t.eligible_steps
  else begin
    let occ = (occurrences t).(site) in
    match Array.length occ with
    | 0 ->
      invalid_arg
        (Fmt.str "Faultsim: site %d has no eligible dynamic occurrences" site)
    | n -> occ.(Rng.int rng n)
  end

(* One campaign sample, addressed by its global index alone: the
   per-sample generator is [Rng.split_at ~seed sample], exactly the
   stream the (sample+1)-th split of a fresh generator yields, so a
   shard can run any contiguous slice of a campaign and the union over
   shards reproduces the sequential run bit for bit. *)
let campaign_sample ?(fault_bits = 1) ?(site = -1) (t : target) ~seed ~sample :
    classification * fault * record =
  let rng = Rng.split_at ~seed sample in
  let dyn_index = sample_dyn_index t rng ~site in
  let cls, fault, st =
    match t.engine with
    | Scratch -> inject_full ~fault_bits t rng ~dyn_index
    | Pooled | Checkpointed _ -> inject_fast ~fault_bits t rng ~dyn_index
  in
  ( cls,
    fault,
    make_record t ~sample cls fault ~steps:st.Machine.steps
      ~cycles:st.Machine.cycles )

(* ------------------------------------------------------------------ *)
(* Adaptive sample allocation.                                         *)
(* ------------------------------------------------------------------ *)

(* How an adaptive campaign splits its budget: [rounds] equal slices,
   each allocated from the statistics of everything before it;
   [target_ci] > 0 stops early (at round granularity) once every
   candidate site's Wilson half-width is at or under the target. *)
type policy = { rounds : int; target_ci : float }

let default_policy = { rounds = 8; target_ci = 0.0 }

(* Contiguous global-sample ranges for the rounds, mirroring
   {!Shard.plan}: near-equal, the first (budget mod rounds) rounds one
   sample larger, clamped so every round is non-empty. *)
let plan_rounds ~rounds ~budget : (int * int) array =
  if budget <= 0 then [||]
  else begin
    let r = max 1 (min rounds budget) in
    let base = budget / r and extra = budget mod r in
    Array.init r (fun i ->
        let lo = (i * base) + min i extra in
        (lo, lo + base + if i < extra then 1 else 0))
  end

(* Allocate [n] samples over the candidate sites, in proportion to the
   Wilson half-widths of their SDC tallies so far ([tally site]; an
   unsampled site has half-width 0.5, maximal pull).  Largest-remainder
   apportionment with ties broken by lower static index; the result
   lists sites ascending with multiplicity, so the mapping from a
   round-local sample index to its site is a pure function of the
   merged prior statistics — byte-reproducible for any shard count. *)
let allocate (t : target) ~tally ~n : int array =
  let sites = site_candidates t in
  let m = Array.length sites in
  if m = 0 then invalid_arg "Faultsim.allocate: no eligible sites";
  if n < 0 then invalid_arg "Faultsim.allocate: negative sample count";
  let w =
    Array.map
      (fun site -> Stats.half_width (Stats.wilson (tally site : Stats.tally)))
      sites
  in
  let total = Array.fold_left ( +. ) 0.0 w in
  let quota = Array.map (fun wi -> float_of_int n *. wi /. total) w in
  let base = Array.map (fun q -> int_of_float (Float.floor q)) quota in
  let rem = max 0 (n - Array.fold_left ( + ) 0 base) in
  let order = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      let fa = quota.(a) -. Float.floor quota.(a)
      and fb = quota.(b) -. Float.floor quota.(b) in
      if fa = fb then compare a b else compare fb fa)
    order;
  for j = 0 to rem - 1 do
    let i = order.(j mod m) in
    base.(i) <- base.(i) + 1
  done;
  let out = Array.make n (-1) in
  let pos = ref 0 in
  Array.iteri
    (fun i site ->
      for _ = 1 to base.(i) do
        out.(!pos) <- site;
        incr pos
      done)
    sites;
  assert (!pos = n);
  out

(* Sample [samples] single-fault runs with the given seed.  [on_record]
   streams one structured record per injection, in sample order;
   [progress] is called after every sample with (done, total);
   [on_stats] observes the running counts every samples/32 injections
   (and at the end) — the sequential per-batch confidence hook. *)
let campaign ?(scope = Original_only) ?(seed = 42L) ?(fault_bits = 1) ?engine
    ?on_record ?progress ?on_stats ~samples img =
  let t = prepare ~scope ?engine img in
  if t.eligible_steps = 0 then
    invalid_arg "Faultsim.campaign: no eligible injection sites";
  let every = max 1 (samples / 32) in
  let rec go sample counts faults =
    if sample = samples then { counts; target = t; faults }
    else
      let cls, fault, record = campaign_sample ~fault_bits t ~seed ~sample in
      let counts = add_count counts cls in
      (match on_record with Some f -> f record | None -> ());
      (match progress with
      | Some f -> f (sample + 1) samples
      | None -> ());
      (match on_stats with
      | Some f when (sample + 1) mod every = 0 || sample + 1 = samples ->
        f ~spent:(sample + 1) counts
      | _ -> ());
      go (sample + 1) counts ((cls, fault) :: faults)
  in
  go 0 zero_counts []

(* SDC coverage of a protected program relative to the raw baseline
   (paper §IV-A3): (SDC_raw - SDC_prot) / SDC_raw. *)
let sdc_coverage ~raw ~protected_ =
  let p_raw = sdc_probability raw in
  if p_raw <= 0.0 then 1.0
  else max 0.0 ((p_raw -. sdc_probability protected_) /. p_raw)

(* Runtime performance overhead (paper §IV-A3) from golden cycles:
   (T_prot - T_raw) / T_raw. *)
let overhead ~raw_cycles ~prot_cycles =
  if raw_cycles <= 0.0 then 0.0 else (prot_cycles -. raw_cycles) /. raw_cycles

(* ------------------------------------------------------------------ *)
(* Propagation tracing.                                                *)
(* ------------------------------------------------------------------ *)

module Propagation = Ferrum_telemetry.Propagation

(* Like {!inject_full}, but with a golden run executing in lockstep:
   returns the propagation summary (first divergence, taint spread,
   detection latency, escape timeline) alongside the classification. *)
let trace_propagation ?fault_bits (t : target) rng ~dyn_index :
    classification * fault * Propagation.summary =
  let tracer = Propagation.create t.img in
  let cls, fault, st =
    inject_full ?fault_bits
      ~on_inject:(Propagation.note_injection tracer)
      ~observe:(Propagation.observe tracer) t rng ~dyn_index
  in
  (cls, fault, Propagation.finish tracer st)

(* {!trace_propagation} on pooled, checkpoint-restored states.  The
   tracer's observation of the pre-flip prefix is a no-op — injected and
   golden states are bit-identical until the flip, so no divergence, no
   taint, nothing recorded — which is what licenses skipping it: the
   lockstep golden state is reconstructed at the flip site by restoring
   a second slot to the same checkpoint and syncing the injected run's
   dirty pages and registers onto it, and the tracer starts observing at
   the flip instruction. *)
let trace_fast ~fault_bits (t : target) rng ~dyn_index :
    classification * fault * Propagation.summary =
  let isl = slot t in
  let seen = ref (Snapshot.restore isl ~dyn_index) in
  let st = Snapshot.state isl in
  let pre = predecoded t in
  t.phases.ph_restores <- t.phases.ph_restores + 1;
  let s0 = st.Machine.steps in
  let prefix_done () =
    t.phases.ph_prefix_steps <- t.phases.ph_prefix_steps + (st.Machine.steps - s0)
  in
  match run_prefix t pre (Array.length t.img.Machine.code) st seen ~dyn_index
  with
  | Some o ->
    (* Site unreached: the traced run never diverged, so the summary is
       that of a tracer that observed nothing. *)
    prefix_done ();
    let tracer = Propagation.create t.img in
    (classify t o, unreached_fault dyn_index, Propagation.finish tracer st)
  | None -> (
    prefix_done ();
    let s1 = st.Machine.steps in
    let suffix_done () =
      t.phases.ph_suffix_steps <-
        t.phases.ph_suffix_steps + (st.Machine.steps - s1)
    in
    let gsl = golden_slot t in
    ignore (Snapshot.restore gsl ~dyn_index : int);
    t.phases.ph_restores <- t.phases.ph_restores + 1;
    Snapshot.sync ~src:isl gsl;
    let tracer = Propagation.create ~golden:(Snapshot.state gsl) t.img in
    let idx = st.Machine.ip in
    match Predecode.step1 pre st with
    | _retired ->
      let fault = apply_flip ~fault_bits t rng st ~dyn_index idx in
      Propagation.note_injection tracer st;
      Propagation.observe tracer st idx;
      let outcome =
        Predecode.exec_observed ~fuel:t.fuel
          ~on_step:(Propagation.observe tracer) pre st
      in
      suffix_done ();
      (classify t outcome, fault, Propagation.finish tracer st)
    | exception Machine.Halt o ->
      (* Unreachable (halting instructions are never eligible); mirrors
         {!inject_full}'s observer firing on the halting step. *)
      let fault = apply_flip ~fault_bits t rng st ~dyn_index idx in
      Propagation.note_injection tracer st;
      Propagation.observe tracer st idx;
      suffix_done ();
      (classify t o, fault, Propagation.finish tracer st)
    | exception Machine.Trap m ->
      suffix_done ();
      (classify t (Machine.Crash m), unreached_fault dyn_index,
       Propagation.finish tracer st))

(* ------------------------------------------------------------------ *)
(* Per-static-instruction vulnerability maps.                          *)
(* ------------------------------------------------------------------ *)

(* Outcome distribution and detection-latency sums of one static
   injection site (FastFlip's unit of analysis). *)
type site_stat = {
  s_counts : counts;
  s_det_steps : int; (* summed detection latency of detected runs *)
  s_det_cycles : float;
}

let zero_site = { s_counts = zero_counts; s_det_steps = 0; s_det_cycles = 0.0 }

type vulnmap = {
  v_target : target;
  v_sites : site_stat array; (* indexed by static instruction *)
  v_counts : counts; (* whole-campaign totals *)
  v_samples : int;
  v_latencies : (int * float) list; (* detected-run latencies, sample order *)
  v_escapes : (int * Propagation.escape) list; (* sample index, per SDC *)
}

(* One traced campaign sample, addressed by its global index — same RNG
   stream as {!campaign_sample}, so the record stream is byte-identical
   whether or not tracing is on. *)
let vulnmap_sample ?(fault_bits = 1) ?(site = -1) (t : target) ~seed ~sample :
    classification * fault * record * Propagation.summary =
  let rng = Rng.split_at ~seed sample in
  let dyn_index = sample_dyn_index t rng ~site in
  let cls, fault, summary =
    match t.engine with
    | Scratch -> trace_propagation ~fault_bits t rng ~dyn_index
    | Pooled | Checkpointed _ -> trace_fast ~fault_bits t rng ~dyn_index
  in
  ( cls,
    fault,
    make_record t ~sample cls fault ~steps:summary.Propagation.end_steps
      ~cycles:summary.Propagation.end_cycles,
    summary )

(* Vulnerability-map aggregation, one traced sample at a time.  Kept
   separate from the sampling loop so a sharded campaign can replay the
   reduction in global sample order: detection-latency cycle sums are
   floating-point, and only identical fold order makes the merged map
   byte-identical to the sequential one. *)
type vulnmap_builder = {
  b_target : target;
  b_sites : site_stat array;
  mutable b_counts : counts;
  mutable b_samples : int;
  mutable b_latencies : (int * float) list; (* newest first *)
  mutable b_escapes : (int * Propagation.escape) list; (* newest first *)
}

let vulnmap_builder (t : target) =
  {
    b_target = t;
    b_sites = Array.make (Array.length t.img.Machine.code) zero_site;
    b_counts = zero_counts;
    b_samples = 0;
    b_latencies = [];
    b_escapes = [];
  }

let vulnmap_add b ~sample ~static_index cls ~latency ~escape =
  (if static_index >= 0 then
     let s = b.b_sites.(static_index) in
     let dl_steps, dl_cycles =
       match latency with Some l -> l | None -> (0, 0.0)
     in
     b.b_sites.(static_index) <-
       {
         s_counts = add_count s.s_counts cls;
         s_det_steps = s.s_det_steps + dl_steps;
         s_det_cycles = s.s_det_cycles +. dl_cycles;
       });
  b.b_counts <- add_count b.b_counts cls;
  b.b_samples <- b.b_samples + 1;
  (match latency with
  | Some l -> b.b_latencies <- l :: b.b_latencies
  | None -> ());
  match (cls, escape) with
  | Sdc, Some e -> b.b_escapes <- (sample, e) :: b.b_escapes
  | _ -> ()

let vulnmap_build b : vulnmap =
  {
    v_target = b.b_target;
    v_sites = b.b_sites;
    v_counts = b.b_counts;
    v_samples = b.b_samples;
    v_latencies = List.rev b.b_latencies;
    v_escapes = List.rev b.b_escapes;
  }

(* Sample [samples] single-fault runs exactly as {!campaign} does (the
   same seed yields the same faults), but trace each injection against
   the golden run and aggregate outcomes and detection latencies per
   static site.  [on_record] streams the same per-injection records as
   {!campaign}. *)
let vulnmap_campaign ?(scope = Original_only) ?(seed = 42L) ?(fault_bits = 1)
    ?engine ?on_record ?progress ?on_stats ~samples img : vulnmap =
  let t = prepare ~scope ?engine img in
  if t.eligible_steps = 0 then
    invalid_arg "Faultsim.vulnmap_campaign: no eligible injection sites";
  let b = vulnmap_builder t in
  let every = max 1 (samples / 32) in
  for sample = 0 to samples - 1 do
    let cls, fault, record, summary =
      vulnmap_sample ~fault_bits t ~seed ~sample
    in
    let latency =
      if cls = Detected then Propagation.detection_latency summary else None
    in
    let escape =
      if cls = Sdc then Some (Propagation.explain_escape summary) else None
    in
    vulnmap_add b ~sample ~static_index:fault.static_index cls ~latency
      ~escape;
    (match on_record with Some f -> f record | None -> ());
    (match on_stats with
    | Some f when (sample + 1) mod every = 0 || sample + 1 = samples ->
      f ~spent:(sample + 1) b.b_counts
    | _ -> ());
    match progress with Some f -> f (sample + 1) samples | None -> ()
  done;
  vulnmap_build b

let mean_latency (s : site_stat) =
  if s.s_counts.detected = 0 then None
  else
    let n = float_of_int s.s_counts.detected in
    Some
      ( float_of_int s.s_det_steps /. n,
        s.s_det_cycles /. n )

(* One JSONL row per site that is sampling-eligible or was hit; ordered
   by static index, so same-seed campaigns export byte-identical
   files. *)
let vulnmap_rows (v : vulnmap) =
  let prov_name = function
    | Instr.Original -> "original"
    | Instr.Dup -> "dup"
    | Instr.Check -> "check"
    | Instr.Instrumentation -> "instr"
  in
  let rows = ref [] in
  for i = Array.length v.v_sites - 1 downto 0 do
    let s = v.v_sites.(i) in
    if v.v_target.eligible.(i) || s.s_counts.samples > 0 then begin
      let ins = v.v_target.img.Machine.code.(i) in
      let mean_steps, mean_cycles =
        match mean_latency s with Some m -> m | None -> (0.0, 0.0)
      in
      rows :=
        Json.Obj
          [
            ("static_index", Json.Int i);
            ("opcode", Json.Str (Instr.mnemonic ins.Instr.op));
            ("prov", Json.Str (prov_name ins.Instr.prov));
            ("asm", Json.Str (Printer.string_of_instr ins.Instr.op));
            ("samples", Json.Int s.s_counts.samples);
            ("benign", Json.Int s.s_counts.benign);
            ("sdc", Json.Int s.s_counts.sdc);
            ("detected", Json.Int s.s_counts.detected);
            ("crash", Json.Int s.s_counts.crash);
            ("timeout", Json.Int s.s_counts.timeout);
            ("mean_det_steps", Json.Float mean_steps);
            ("mean_det_cycles", Json.Float mean_cycles);
          ]
        :: !rows
    end
  done;
  !rows

let vulnmap_fields =
  Metrics.
    [
      field "static_index" F_int;
      field "opcode" F_string;
      field "prov" F_string;
      field "asm" F_string;
      field "samples" F_int;
      field "benign" F_int;
      field "sdc" F_int;
      field "detected" F_int;
      field "crash" F_int;
      field "timeout" F_int;
      field "mean_det_steps" F_float;
      field "mean_det_cycles" F_float;
    ]

let vulnmap_kind = "ferrum.vulnmap.v1"
