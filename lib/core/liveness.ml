(* Backward liveness analysis over assembly functions.

   The paper invokes liveness analysis when arguing FERRUM's register
   reuse is safe ("according to liveness analysis, after the check
   process, the register can immediately be put into new use",
   §III-B2).  The fixpoint now lives in {!Ferrum_analysis.Liveness}
   (on the generic worklist engine over the real CFG); this module
   keeps the historical interface — [Spare.GSet] sets, per-(label, k)
   queries, {!Spare.preference}-ordered dead lists — that FERRUM's
   requisition path uses to clobber provably-dead registers without
   the Fig. 7 push/pop.

   Conservatism is unchanged: a [call] is treated as reading every
   register (callees are analysed separately and their own protection
   may touch anything), so nothing is ever "dead across a call";
   partial (8/16-bit) writes do not kill; unknown positions report
   live. *)

open Ferrum_asm
module A = Ferrum_analysis.Liveness
module GSet = Spare.GSet

let of_a s = GSet.of_list (A.GSet.elements s)
let reads (i : Instr.t) : GSet.t = of_a (A.reads i)
let writes (i : Instr.t) : GSet.t = of_a (A.writes i)

type t = A.t

let analyze (f : Prog.func) : t = A.analyze f
let dead_at (t : t) ~label ~k r = A.dead_at t ~label ~k r

let dead_regs_at (t : t) ~label ~k =
  List.filter (fun r -> dead_at t ~label ~k r) Spare.preference
