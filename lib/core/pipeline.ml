(* End-to-end drivers: compile a module unprotected or under any of the
   three techniques, with transform timing for the paper's compile-time
   measurement (§IV-B3).

   When a {!Ferrum_telemetry.Span} recorder is supplied, every stage
   (backend compile, peephole, the protection transform) runs inside a
   span carrying counters — instructions before/after, duplicates and
   checkers inserted, spare registers found, stack requisitions — so
   `ferrum profile` and the bench harness can attribute both time and
   code growth to individual stages. *)

open Ferrum_asm
module Span = Ferrum_telemetry.Span

type result = {
  technique : Technique.t option; (* None = unprotected baseline *)
  program : Prog.t;
  transform_seconds : float; (* time spent in the protection transform *)
}

(* Run [f] inside a span when a recorder is present. *)
let in_span recorder name f =
  match recorder with Some r -> Span.span r name f | None -> f ()

let counter recorder name v =
  match recorder with Some r -> Span.counter r name v | None -> ()

(* Provenance composition of a program, as span counters. *)
let count_program recorder p =
  let s = Stats.of_program p in
  counter recorder "instructions" s.Stats.total;
  if s.Stats.dups > 0 then counter recorder "duplicated" s.Stats.dups;
  if s.Stats.checks > 0 then counter recorder "checkers" s.Stats.checks;
  if s.Stats.instrumentation > 0 then
    counter recorder "instrumentation" s.Stats.instrumentation

(* Total spare GPRs/SIMD registers discoverable across the functions of
   a compiled program (paper §III-B1) — what FERRUM has to work with
   before it must requisition. *)
let count_spares recorder (p : Prog.t) =
  let gprs, simds =
    List.fold_left
      (fun (g, s) f ->
        let sp = Spare.analyze_func f in
        (g + List.length sp.Spare.spare_gprs,
         s + List.length sp.Spare.spare_simd))
      (0, 0) p.Prog.funcs
  in
  counter recorder "spare_gprs" gprs;
  counter recorder "spare_simd" simds

(* Compile, optionally running the backend peephole optimiser
   (experiment E9: how much of the cross-layer story is -O0 glue). *)
let compile_raw ?recorder ?(optimize = false) ?oracle
    (m : Ferrum_ir.Ir.modul) : Prog.t =
  let p =
    in_span recorder "compile" (fun () ->
        let p = Ferrum_backend.Backend.compile ?oracle m in
        count_program recorder p;
        p)
  in
  if optimize then
    in_span recorder "peephole" (fun () ->
        let p', _rewrites = Ferrum_backend.Peephole.run p in
        count_program recorder p';
        p')
  else p

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Protect [m] with [technique].  The timed section covers only the
   protection transform itself (for IR-level techniques, the IR pass;
   for FERRUM, the assembly pass), matching how the paper reports
   FERRUM's execution time. *)
let protect ?recorder ?(ferrum_config = Ferrum_pass.default_config)
    ?(optimize = false) technique (m : Ferrum_ir.Ir.modul) : result =
  let span_name = "protect." ^ Technique.short_name technique in
  match technique with
  | Technique.Ir_level_eddi ->
    let (m', oracle), secs =
      in_span recorder span_name (fun () -> timed (fun () -> Ir_eddi.protect m))
    in
    let program = compile_raw ?recorder ~optimize ~oracle m' in
    { technique = Some technique; program; transform_seconds = secs }
  | Technique.Hybrid_assembly_eddi ->
    let p, secs =
      in_span recorder span_name (fun () ->
          let (p, stats), secs =
            timed (fun () -> Hybrid.protect ~optimize m)
          in
          counter recorder "protected" stats.Hybrid.protected_count;
          counter recorder "skipped" stats.Hybrid.skipped;
          count_program recorder p;
          (p, secs))
    in
    { technique = Some technique; program = p; transform_seconds = secs }
  | Technique.Ferrum ->
    let base = compile_raw ?recorder ~optimize m in
    let p, secs =
      in_span recorder span_name (fun () ->
          count_spares recorder base;
          let (p, stats), secs =
            timed (fun () -> Ferrum_pass.protect ~config:ferrum_config base)
          in
          counter recorder "simd_batched" stats.Ferrum_pass.simd_batched;
          counter recorder "general_protected"
            stats.Ferrum_pass.general_protected;
          counter recorder "comparisons_protected"
            stats.Ferrum_pass.comparisons_protected;
          counter recorder "flushes" stats.Ferrum_pass.flushes;
          counter recorder "requisitions"
            stats.Ferrum_pass.requisitioned_blocks;
          if stats.Ferrum_pass.unprotected > 0 then
            counter recorder "unprotected" stats.Ferrum_pass.unprotected;
          count_program recorder p;
          (p, secs))
    in
    { technique = Some technique; program = p; transform_seconds = secs }

module Lint = Ferrum_analysis.Lint

let lint_profile (t : Technique.t option) : Lint.profile =
  match t with
  | None -> Lint.profile_unprotected
  | Some Technique.Ir_level_eddi -> Lint.profile_ir_eddi
  | Some Technique.Hybrid_assembly_eddi -> Lint.profile_hybrid
  | Some Technique.Ferrum -> Lint.profile_ferrum

exception Lint_failed of string

let lint ?recorder ?(assert_clean = false) (r : result) : Lint.report =
  in_span recorder "lint" (fun () ->
      let report = Lint.run (lint_profile r.technique) r.program in
      counter recorder "findings" (List.length report.Lint.r_findings);
      counter recorder "lint_errors" (Lint.errors report);
      counter recorder "uncovered_sites"
        (List.length report.Lint.r_uncovered);
      if assert_clean && Lint.errors report > 0 then
        raise
          (Lint_failed
             (Fmt.str "%d error-severity lint finding(s) under %s:@.%a"
                (Lint.errors report)
                (match r.technique with
                | Some t -> Technique.short_name t
                | None -> "raw")
                Lint.pp_report report));
      report)

let raw ?recorder ?(optimize = false) (m : Ferrum_ir.Ir.modul) : result =
  { technique = None; program = compile_raw ?recorder ~optimize m;
    transform_seconds = 0.0 }

(* All four configurations of a module: raw + the three techniques. *)
let all_configurations ?recorder ?ferrum_config ?optimize m =
  raw ?recorder ?optimize m
  :: List.map
       (fun t -> protect ?recorder ?ferrum_config ?optimize t m)
       Technique.all
