(** End-to-end drivers: compile a module unprotected or under any of the
    three techniques, with transform timing for the paper's compile-time
    measurement (§IV-B3).

    When a {!Ferrum_telemetry.Span} recorder is supplied, every stage
    (backend compile, peephole, protection transform) runs inside a span
    carrying counters: instructions, duplicates and checkers inserted,
    spare registers found, stack requisitions. *)

type result = {
  technique : Technique.t option;  (** [None] = unprotected baseline *)
  program : Ferrum_asm.Prog.t;
  transform_seconds : float;  (** time spent in the protection transform *)
}

(** Compile only; [optimize] enables the backend peephole (E9). *)
val compile_raw :
  ?recorder:Ferrum_telemetry.Span.recorder ->
  ?optimize:bool ->
  ?oracle:Ferrum_backend.Backend.prov_oracle ->
  Ferrum_ir.Ir.modul ->
  Ferrum_asm.Prog.t

(** Protect with one technique.  The timed section covers the protection
    transform itself: the IR pass for IR-level techniques, the assembly
    pass for FERRUM — matching how the paper reports FERRUM's execution
    time. *)
val protect :
  ?recorder:Ferrum_telemetry.Span.recorder ->
  ?ferrum_config:Ferrum_pass.config ->
  ?optimize:bool ->
  Technique.t ->
  Ferrum_ir.Ir.modul ->
  result

(** The unprotected configuration. *)
val raw :
  ?recorder:Ferrum_telemetry.Span.recorder ->
  ?optimize:bool ->
  Ferrum_ir.Ir.modul ->
  result

(** {1 Static verification}

    The shadow-consistency profile each technique promises (what
    `ferrum lint` enforces): [None]/IR-EDDI have no assembly-level
    invariants; hybrid adds Fig. 4 duplication; FERRUM adds pair
    comparisons and SIMD batching. *)
val lint_profile : Technique.t option -> Ferrum_analysis.Lint.profile

exception Lint_failed of string

(** Lint a pipeline result under its technique's profile.  With
    [assert_clean] (default false), raise {!Lint_failed} when any
    error-severity finding survives — lets callers assert transform
    output is provably well-formed.  Spans carry finding/uncovered
    counters when a recorder is supplied. *)
val lint :
  ?recorder:Ferrum_telemetry.Span.recorder ->
  ?assert_clean:bool ->
  result ->
  Ferrum_analysis.Lint.report

(** Raw followed by each technique, in {!Technique.all} order. *)
val all_configurations :
  ?recorder:Ferrum_telemetry.Span.recorder ->
  ?ferrum_config:Ferrum_pass.config ->
  ?optimize:bool ->
  Ferrum_ir.Ir.modul ->
  result list
