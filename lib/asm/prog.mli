(** Assembly program structure: labelled basic blocks grouped into
    functions.  Control falls through from the end of a block to the
    next block in list order unless the last instruction is a barrier
    (unconditional jump or return), exactly as in assembly text. *)

type block = { label : string; insns : Instr.ins list }

type func = { fname : string; blocks : block list }

type t = { funcs : func list; entry : string }

(** Reserved label reached by checkers on a mismatch; the machine halts
    with outcome [Detected] when control transfers here (the paper's
    listings use the same name). *)
val exit_function_label : string

(** Builtin recognised by the machine: appends %rdi to the observable
    program output. *)
val builtin_print : string

(** Builtin recognised by the machine: halts with outcome [Detected]
    (used by the IR-level detector blocks). *)
val builtin_detect : string

val block : string -> Instr.ins list -> block
val func : string -> block list -> func

(** Build a program; the entry function defaults to ["main"]. *)
val program : ?entry:string -> func list -> t

val find_func : t -> string -> func option

val num_instructions_func : func -> int

(** [fold_insns f acc t] folds [f] over every instruction in layout
    order — function order, then block order, then instruction order
    within the block.  This is the order the machine's loader assigns
    static indices in, so a visitor that counts calls reproduces each
    instruction's global index (the static-analysis flattener and the
    fault injector both rely on this agreement). *)
val fold_insns : ('a -> func -> block -> Instr.ins -> 'a) -> 'a -> t -> 'a

(** Static instruction count of the whole program (the paper's §IV-B3
    correlates FERRUM's transform time with this number). *)
val num_instructions : t -> int

val map_funcs : (func -> func) -> t -> t

(** Block labels of a function, in layout order. *)
val labels_of_func : func -> string list

exception Ill_formed of string

(** Raise {!Ill_formed} with a formatted message. *)
val ill_formed : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Structural validation: unique labels, resolvable jump targets and
    callees, legal scale factors, and no function whose control falls
    off the end.  Raises {!Ill_formed} otherwise. *)
val validate : t -> unit

(** [(originals, dups, checks, instrumentation)] instruction counts. *)
val provenance_counts : t -> int * int * int * int
