(* Instruction AST for the x86-64 subset used throughout the project.
   Operand order follows AT&T syntax: the source comes first, the
   destination last. *)

type mem = {
  base : Reg.gpr option;
  index : Reg.gpr option;
  scale : int; (* 1, 2, 4 or 8 *)
  disp : int;
}

type operand = Imm of int64 | Reg of Reg.gpr | Mem of mem

type alu = Add | Sub | Imul | And | Or | Xor

type shift_kind = Shl | Sar | Shr

type shift_amount = Amt_imm of int | Amt_cl

(* Source operand of [pinsrq]: a 64-bit register or memory location. *)
type pinsr_src = Psrc_reg of Reg.gpr | Psrc_mem of mem

type t =
  | Mov of Reg.size * operand * operand
  | Movslq of operand * Reg.gpr (* sign-extend r/m32 into r64 *)
  | Movzbq of operand * Reg.gpr (* zero-extend r/m8 into r64 *)
  | Lea of mem * Reg.gpr
  | Alu of alu * Reg.size * operand * operand (* dst := dst op src *)
  | Shift of shift_kind * Reg.size * shift_amount * operand
  | Neg of Reg.size * operand
  | Not of Reg.size * operand
  | Cmp of Reg.size * operand * operand (* flags := dst - src *)
  | Test of Reg.size * operand * operand (* flags := dst AND src *)
  | Set of Cond.t * operand (* byte destination *)
  | Jmp of string
  | Jcc of Cond.t * string
  | Call of string
  | Ret
  | Push of operand
  | Pop of Reg.gpr
  | Cqto (* sign-extend RAX into RDX:RAX *)
  | Idiv of Reg.size * operand (* RDX:RAX / src -> RAX quot, RDX rem *)
  (* SIMD subset used by FERRUM's batched checking (paper Fig. 6). *)
  | MovQ_to_xmm of operand * Reg.simd (* movq r/m64, %xmmN (zero-extends) *)
  | MovQ_from_xmm of Reg.simd * Reg.gpr (* movq %xmmN, r64 *)
  | Pinsrq of int * pinsr_src * Reg.simd (* lane 0 or 1 *)
  | Pextrq of int * Reg.simd * Reg.gpr
  | Vinserti128 of int * Reg.simd * Reg.simd * Reg.simd
    (* vinserti128 $i, %xmmS, %ymmA, %ymmD *)
  | Vpxor of Reg.simd * Reg.simd * Reg.simd (* %ymmS1, %ymmS2, %ymmD *)
  | Vptest of Reg.simd * Reg.simd (* ZF := (s2 AND s1) = 0 *)
  (* AVX-512 subset for the ZMM variant of batched checking (paper
     §III-B5 names ZMM registers as the natural extension).  [Vptestmq]
     models the vptestmq+kortestz sequence as one flag-setting test. *)
  | Vinserti64x4 of int * Reg.simd * Reg.simd * Reg.simd
    (* vinserti64x4 $i, %ymmS, %zmmA, %zmmD *)
  | Vpxorq512 of Reg.simd * Reg.simd * Reg.simd (* %zmmS1, %zmmS2, %zmmD *)
  | Vptestmq512 of Reg.simd * Reg.simd (* ZF := (s2 AND s1) = 0 over 512b *)

(* Where an instruction came from; the fault-injection campaign samples
   only [Original] instructions by default (DESIGN.md, E8 studies the
   all-sites variant). *)
type provenance = Original | Dup | Check | Instrumentation

type ins = { op : t; prov : provenance }

let original op = { op; prov = Original }
let dup op = { op; prov = Dup }
let check op = { op; prov = Check }
let instrumentation op = { op; prov = Instrumentation }

let mem ?base ?index ?(scale = 1) disp = { base; index; scale; disp }

(* ------------------------------------------------------------------ *)
(* Destinations written by an instruction, as seen by the fault model: *)
(* a fault flips one bit of one written destination at write-back.     *)
(* ------------------------------------------------------------------ *)

type dest =
  | Dgpr of Reg.gpr * Reg.size (* the written view of a GPR *)
  | Dsimd of Reg.simd * int list (* written 64-bit lanes (0..7) *)
  | Dflags of Cond.flag list

let flags_arith = [ Cond.ZF; Cond.SF; Cond.CF; Cond.OF ]
let flags_logic = [ Cond.ZF; Cond.SF ] (* CF/OF forced to 0; flipping them
                                          is modelled via ZF/SF only *)

let dest_of_operand size = function
  | Reg r -> [ Dgpr (r, size) ]
  | Mem _ -> [] (* memory is ECC-protected in the fault model *)
  | Imm _ -> []

(* All architectural destinations an instruction writes.  [Ret], [Jmp],
   [Call] and stores write no injectable destination: memory and the
   return-address stack are covered by ECC per the paper's fault model.
   RSP updates from push/pop/call/ret are excluded for the same reason
   the paper excludes them (they virtually always crash, see DESIGN.md). *)
let defs = function
  | Mov (s, _, dst) -> dest_of_operand s dst
  | Movslq (_, r) | Movzbq (_, r) -> [ Dgpr (r, Reg.Q) ]
  | Lea (_, r) -> [ Dgpr (r, Reg.Q) ]
  | Alu (op, s, _, dst) ->
    let f = match op with And | Or | Xor -> flags_logic | _ -> flags_arith in
    dest_of_operand s dst @ [ Dflags f ]
  | Shift (_, s, _, dst) -> dest_of_operand s dst @ [ Dflags flags_logic ]
  | Neg (s, dst) -> dest_of_operand s dst @ [ Dflags flags_arith ]
  | Not (s, dst) -> dest_of_operand s dst
  | Cmp _ -> [ Dflags flags_arith ]
  | Test _ -> [ Dflags flags_logic ]
  | Set (_, dst) -> dest_of_operand Reg.B dst
  | Jmp _ | Jcc _ | Call _ | Ret | Push _ -> []
  | Pop r -> [ Dgpr (r, Reg.Q) ]
  | Cqto -> [ Dgpr (Reg.RDX, Reg.Q) ]
  | Idiv _ -> [ Dgpr (Reg.RAX, Reg.Q); Dgpr (Reg.RDX, Reg.Q) ]
  | MovQ_to_xmm (_, x) -> [ Dsimd (x, [ 0; 1 ]) ]
  | MovQ_from_xmm (_, r) -> [ Dgpr (r, Reg.Q) ]
  | Pinsrq (lane, _, x) -> [ Dsimd (x, [ lane ]) ]
  | Pextrq (_, _, r) -> [ Dgpr (r, Reg.Q) ]
  | Vinserti128 (_, _, _, d) -> [ Dsimd (d, [ 0; 1; 2; 3 ]) ]
  | Vpxor (_, _, d) -> [ Dsimd (d, [ 0; 1; 2; 3 ]) ]
  | Vptest _ -> [ Dflags [ Cond.ZF; Cond.CF ] ]
  | Vinserti64x4 (_, _, _, d) -> [ Dsimd (d, [ 0; 1; 2; 3; 4; 5; 6; 7 ]) ]
  | Vpxorq512 (_, _, d) -> [ Dsimd (d, [ 0; 1; 2; 3; 4; 5; 6; 7 ]) ]
  | Vptestmq512 _ -> [ Dflags [ Cond.ZF; Cond.CF ] ]

(* ------------------------------------------------------------------ *)
(* Register usage, for FERRUM's spare-register discovery.              *)
(* ------------------------------------------------------------------ *)

let gprs_of_mem m =
  (match m.base with Some r -> [ r ] | None -> [])
  @ (match m.index with Some r -> [ r ] | None -> [])

let gprs_of_operand = function
  | Imm _ -> []
  | Reg r -> [ r ]
  | Mem m -> gprs_of_mem m

let gprs_of_pinsr_src = function
  | Psrc_reg r -> [ r ]
  | Psrc_mem m -> gprs_of_mem m

(* Every GPR an instruction mentions, explicitly or implicitly. *)
let gprs_mentioned = function
  | Mov (_, a, b) | Alu (_, _, a, b) | Cmp (_, a, b) | Test (_, a, b) ->
    gprs_of_operand a @ gprs_of_operand b
  | Movslq (a, r) | Movzbq (a, r) -> gprs_of_operand a @ [ r ]
  | Lea (m, r) -> gprs_of_mem m @ [ r ]
  | Shift (_, _, amt, dst) ->
    (match amt with Amt_cl -> [ Reg.RCX ] | Amt_imm _ -> [])
    @ gprs_of_operand dst
  | Neg (_, o) | Not (_, o) | Set (_, o) -> gprs_of_operand o
  | Jmp _ | Jcc _ | Ret -> []
  | Call _ -> [] (* calling convention handled at function granularity *)
  | Push o -> Reg.RSP :: gprs_of_operand o
  | Pop r -> [ Reg.RSP; r ]
  | Cqto -> [ Reg.RAX; Reg.RDX ]
  | Idiv (_, o) -> [ Reg.RAX; Reg.RDX ] @ gprs_of_operand o
  | MovQ_to_xmm (o, _) -> gprs_of_operand o
  | MovQ_from_xmm (_, r) -> [ r ]
  | Pinsrq (_, s, _) -> gprs_of_pinsr_src s
  | Pextrq (_, _, r) -> [ r ]
  | Vinserti128 _ | Vpxor _ | Vptest _
  | Vinserti64x4 _ | Vpxorq512 _ | Vptestmq512 _ -> []

(* Every SIMD register an instruction mentions. *)
let simds_mentioned = function
  | MovQ_to_xmm (_, x) | MovQ_from_xmm (x, _) | Pinsrq (_, _, x)
  | Pextrq (_, x, _) -> [ x ]
  | Vinserti128 (_, s, a, d) | Vinserti64x4 (_, s, a, d) -> [ s; a; d ]
  | Vpxor (a, b, d) | Vpxorq512 (a, b, d) -> [ a; b; d ]
  | Vptest (a, b) | Vptestmq512 (a, b) -> [ a; b ]
  | Mov _ | Movslq _ | Movzbq _ | Lea _ | Alu _ | Shift _ | Neg _ | Not _
  | Cmp _ | Test _ | Set _ | Jmp _ | Jcc _ | Call _ | Ret | Push _ | Pop _
  | Cqto | Idiv _ -> []

(* True when the instruction writes RFLAGS bits. *)
let writes_flags i =
  List.exists (function Dflags _ -> true | _ -> false) (defs i)

(* True when the instruction reads RFLAGS (conditional behaviour). *)
let reads_flags = function
  | Jcc _ | Set _ -> true
  | _ -> false

(* Jump targets referenced by the instruction, used by the flattener. *)
let targets = function
  | Jmp l | Jcc (_, l) -> [ l ]
  | _ -> []

(* Coarse classes used by the cycle-cost model and static statistics. *)
type klass =
  | K_alu (* register/immediate arithmetic and moves *)
  | K_load (* memory read *)
  | K_store (* memory write *)
  | K_branch (* jmp/jcc *)
  | K_call (* call/ret/push/pop *)
  | K_simd (* SIMD data movement / logic *)
  | K_div (* idiv/cqto *)
  | K_setcc

let klass_name = function
  | K_alu -> "alu"
  | K_load -> "load"
  | K_store -> "store"
  | K_branch -> "branch"
  | K_call -> "call"
  | K_simd -> "simd"
  | K_div -> "div"
  | K_setcc -> "setcc"

let is_mem_operand = function Mem _ -> true | _ -> false

let klass = function
  | Mov (_, src, dst) ->
    if is_mem_operand dst then K_store
    else if is_mem_operand src then K_load
    else K_alu
  | Movslq (src, _) | Movzbq (src, _) ->
    if is_mem_operand src then K_load else K_alu
  | Lea _ -> K_alu
  | Alu (_, _, src, dst) ->
    if is_mem_operand dst then K_store
    else if is_mem_operand src then K_load
    else K_alu
  | Shift _ | Neg _ | Not _ -> K_alu
  | Cmp (_, src, dst) | Test (_, src, dst) ->
    if is_mem_operand src || is_mem_operand dst then K_load else K_alu
  | Set _ -> K_setcc
  | Jmp _ | Jcc _ -> K_branch
  | Call _ | Ret | Push _ | Pop _ -> K_call
  | Cqto | Idiv _ -> K_div
  | MovQ_to_xmm (o, _) -> if is_mem_operand o then K_load else K_simd
  | MovQ_from_xmm _ | Pextrq _ -> K_simd
  | Pinsrq (_, Psrc_mem _, _) -> K_load
  | Pinsrq (_, Psrc_reg _, _) -> K_simd
  | Vinserti128 _ | Vpxor _ | Vptest _
  | Vinserti64x4 _ | Vpxorq512 _ | Vptestmq512 _ -> K_simd

(* Bare mnemonic (no operands, no size suffix), the aggregation key of
   per-opcode profiles.  Condition codes are kept — [jne] and [je] have
   different prediction/protection behaviour worth seeing separately. *)
let mnemonic = function
  | Mov _ -> "mov"
  | Movslq _ -> "movslq"
  | Movzbq _ -> "movzbq"
  | Lea _ -> "lea"
  | Alu (Add, _, _, _) -> "add"
  | Alu (Sub, _, _, _) -> "sub"
  | Alu (Imul, _, _, _) -> "imul"
  | Alu (And, _, _, _) -> "and"
  | Alu (Or, _, _, _) -> "or"
  | Alu (Xor, _, _, _) -> "xor"
  | Shift (Shl, _, _, _) -> "shl"
  | Shift (Sar, _, _, _) -> "sar"
  | Shift (Shr, _, _, _) -> "shr"
  | Neg _ -> "neg"
  | Not _ -> "not"
  | Cmp _ -> "cmp"
  | Test _ -> "test"
  | Set (c, _) -> "set" ^ Cond.name c
  | Jmp _ -> "jmp"
  | Jcc (c, _) -> "j" ^ Cond.name c
  | Call _ -> "call"
  | Ret -> "ret"
  | Push _ -> "push"
  | Pop _ -> "pop"
  | Cqto -> "cqto"
  | Idiv _ -> "idiv"
  | MovQ_to_xmm _ | MovQ_from_xmm _ -> "movq(xmm)"
  | Pinsrq _ -> "pinsrq"
  | Pextrq _ -> "pextrq"
  | Vinserti128 _ -> "vinserti128"
  | Vpxor _ -> "vpxor"
  | Vptest _ -> "vptest"
  | Vinserti64x4 _ -> "vinserti64x4"
  | Vpxorq512 _ -> "vpxorq"
  | Vptestmq512 _ -> "vptestmq"

(* True when control cannot fall through past this instruction. *)
let is_barrier = function Jmp _ | Ret -> true | _ -> false
