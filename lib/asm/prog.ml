(* Assembly program structure: labelled basic blocks grouped into
   functions.  Control falls through from the end of one block to the
   next block in list order unless the last instruction is a barrier
   (unconditional jump or return), exactly as in real assembly text. *)

type block = { label : string; insns : Instr.ins list }

type func = { fname : string; blocks : block list }

type t = { funcs : func list; entry : string }

(* Label reached by checkers on a mismatch; the machine halts with
   outcome [Detected] when control is transferred here (paper listings
   use the same name). *)
let exit_function_label = "exit_function"

(* Builtin functions recognised by the machine (see Ferrum_machine):
   [print_i64] appends %rdi to the observable program output and
   [__ferrum_detect] halts with outcome [Detected]. *)
let builtin_print = "print_i64"
let builtin_detect = "__ferrum_detect"

let block label insns = { label; insns }

let func fname blocks = { fname; blocks }

let program ?(entry = "main") funcs = { funcs; entry }

let find_func t name = List.find_opt (fun f -> String.equal f.fname name) t.funcs

let num_instructions_func f =
  List.fold_left (fun acc b -> acc + List.length b.insns) 0 f.blocks

(* Fold over every instruction in layout order — function order, then
   block order, then instruction order within the block.  This is the
   order the machine's loader assigns static indices in, so a visitor
   that counts calls reproduces each instruction's global index. *)
let fold_insns f acc (t : t) =
  List.fold_left
    (fun acc (fn : func) ->
      List.fold_left
        (fun acc (b : block) ->
          List.fold_left (fun acc i -> f acc fn b i) acc b.insns)
        acc fn.blocks)
    acc t.funcs

(* Static instruction count of a whole program (paper §IV-B3 correlates
   FERRUM's transform time with this number). *)
let num_instructions t = fold_insns (fun acc _ _ _ -> acc + 1) 0 t

let map_funcs fn t = { t with funcs = List.map fn t.funcs }

(* All block labels of a function, in layout order. *)
let labels_of_func f = List.map (fun b -> b.label) f.blocks

exception Ill_formed of string

let ill_formed fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

(* Structural validation: unique labels, jump targets resolve to a label
   of the same function (or the reserved detector label), the last block
   of a function does not fall off the end, and scale factors are legal.
   Raises [Ill_formed] otherwise. *)
let validate (t : t) =
  let func_names = List.map (fun f -> f.fname) t.funcs in
  let module SS = Set.Make (String) in
  let name_set = SS.of_list func_names in
  if SS.cardinal name_set <> List.length func_names then
    ill_formed "duplicate function names";
  if not (SS.mem t.entry name_set) then ill_formed "entry %s undefined" t.entry;
  List.iter
    (fun f ->
      let labels = labels_of_func f in
      let label_set = SS.of_list labels in
      if SS.cardinal label_set <> List.length labels then
        ill_formed "%s: duplicate block labels" f.fname;
      let check_target l =
        if
          (not (SS.mem l label_set))
          && not (String.equal l exit_function_label)
        then ill_formed "%s: unknown jump target %s" f.fname l
      in
      let check_mem (m : Instr.mem) =
        match m.scale with
        | 1 | 2 | 4 | 8 -> ()
        | s -> ill_formed "%s: illegal scale %d" f.fname s
      in
      let check_ins (ins : Instr.ins) =
        List.iter check_target (Instr.targets ins.op);
        match ins.op with
        | Lea (m, _) -> check_mem m
        | Mov (_, a, b) | Alu (_, _, a, b) | Cmp (_, a, b) | Test (_, a, b)
          ->
          List.iter
            (function Instr.Mem m -> check_mem m | _ -> ())
            [ a; b ]
        | Call callee ->
          if
            (not (SS.mem callee name_set))
            && (not (String.equal callee builtin_print))
            && not (String.equal callee builtin_detect)
          then ill_formed "%s: call to unknown function %s" f.fname callee
        | _ -> ()
      in
      List.iter (fun b -> List.iter check_ins b.insns) f.blocks;
      match List.rev f.blocks with
      | [] -> ill_formed "%s: empty function" f.fname
      | last :: _ -> (
        match List.rev last.insns with
        | i :: _ when Instr.is_barrier i.op -> ()
        | _ -> ill_formed "%s: control falls off the end" f.fname))
    t.funcs

(* Provenance histogram, used in tests and reports. *)
let provenance_counts (t : t) =
  fold_insns
    (fun (orig, dups, checks, instr) _ _ (i : Instr.ins) ->
      match i.prov with
      | Instr.Original -> (orig + 1, dups, checks, instr)
      | Instr.Dup -> (orig, dups + 1, checks, instr)
      | Instr.Check -> (orig, dups, checks + 1, instr)
      | Instr.Instrumentation -> (orig, dups, checks, instr + 1))
    (0, 0, 0, 0) t
