(** Instruction AST for the x86-64 subset used throughout the project.

    Operand order follows AT&T syntax: source first, destination last.
    The subset covers what the backend emits for the mini-IR (moves,
    two-operand ALU, shifts, compares, setcc, control flow, push/pop,
    sign extension, division) plus the SSE/AVX/AVX-512 data-movement and
    comparison instructions FERRUM's batched checking uses (paper
    Figs. 4-7). *)

(** A memory operand [disp(base, index, scale)]. *)
type mem = {
  base : Reg.gpr option;
  index : Reg.gpr option;
  scale : int;  (** 1, 2, 4 or 8 *)
  disp : int;
}

type operand = Imm of int64 | Reg of Reg.gpr | Mem of mem

type alu = Add | Sub | Imul | And | Or | Xor

type shift_kind = Shl | Sar | Shr

(** Shift amount: immediate, or the CL register. *)
type shift_amount = Amt_imm of int | Amt_cl

(** Source operand of [pinsrq]: a 64-bit register or memory location. *)
type pinsr_src = Psrc_reg of Reg.gpr | Psrc_mem of mem

type t =
  | Mov of Reg.size * operand * operand
  | Movslq of operand * Reg.gpr  (** sign-extend r/m32 into r64 *)
  | Movzbq of operand * Reg.gpr  (** zero-extend r/m8 into r64 *)
  | Lea of mem * Reg.gpr
  | Alu of alu * Reg.size * operand * operand  (** dst := dst op src *)
  | Shift of shift_kind * Reg.size * shift_amount * operand
  | Neg of Reg.size * operand
  | Not of Reg.size * operand
  | Cmp of Reg.size * operand * operand  (** flags := dst - src *)
  | Test of Reg.size * operand * operand  (** flags := dst AND src *)
  | Set of Cond.t * operand  (** byte destination *)
  | Jmp of string
  | Jcc of Cond.t * string
  | Call of string
  | Ret
  | Push of operand
  | Pop of Reg.gpr
  | Cqto  (** sign-extend RAX into RDX:RAX *)
  | Idiv of Reg.size * operand
      (** RDX:RAX / src -> quotient in RAX, remainder in RDX *)
  | MovQ_to_xmm of operand * Reg.simd
      (** [movq r/m64, %xmmN]; zeroes bits 64..127 *)
  | MovQ_from_xmm of Reg.simd * Reg.gpr
  | Pinsrq of int * pinsr_src * Reg.simd  (** insert 64-bit lane 0 or 1 *)
  | Pextrq of int * Reg.simd * Reg.gpr
  | Vinserti128 of int * Reg.simd * Reg.simd * Reg.simd
      (** [vinserti128 $i, %xmmS, %ymmA, %ymmD] *)
  | Vpxor of Reg.simd * Reg.simd * Reg.simd
      (** [vpxor %ymmS1, %ymmS2, %ymmD] *)
  | Vptest of Reg.simd * Reg.simd  (** ZF := (s2 AND s1) = 0 over 256 bits *)
  | Vinserti64x4 of int * Reg.simd * Reg.simd * Reg.simd
      (** [vinserti64x4 $i, %ymmS, %zmmA, %zmmD] (AVX-512, paper §III-B5) *)
  | Vpxorq512 of Reg.simd * Reg.simd * Reg.simd
      (** [vpxorq %zmmS1, %zmmS2, %zmmD] *)
  | Vptestmq512 of Reg.simd * Reg.simd
      (** models vptestmq+kortestz: ZF := (s2 AND s1) = 0 over 512 bits *)

(** Where an instruction came from.  The fault-injection campaign
    samples only [Original] instructions by default; [Dup]/[Check]/
    [Instrumentation] mark protection code, which the cycle model also
    prices differently (superscalar overlap). *)
type provenance = Original | Dup | Check | Instrumentation

(** An instruction tagged with its provenance. *)
type ins = { op : t; prov : provenance }

val original : t -> ins
val dup : t -> ins
val check : t -> ins
val instrumentation : t -> ins

(** Build a memory operand; scale defaults to 1. *)
val mem : ?base:Reg.gpr -> ?index:Reg.gpr -> ?scale:int -> int -> mem

(** An architectural destination, as seen by the fault model: a fault
    flips one bit of one written destination at write-back. *)
type dest =
  | Dgpr of Reg.gpr * Reg.size  (** the written view of a GPR *)
  | Dsimd of Reg.simd * int list  (** written 64-bit lanes (0..7) *)
  | Dflags of Cond.flag list  (** the flags the instruction defines *)

(** All injectable destinations an instruction writes.  Memory and the
    return-address stack are ECC-protected per the paper's fault model
    and yield no destinations; so do pure control transfers. *)
val defs : t -> dest list

(** GPRs appearing in a memory operand (base and index). *)
val gprs_of_mem : mem -> Reg.gpr list

(** GPRs appearing in a [pinsrq] source. *)
val gprs_of_pinsr_src : pinsr_src -> Reg.gpr list

(** Every GPR the instruction mentions, explicitly or implicitly
    (FERRUM's spare-register discovery, paper §III-B1). *)
val gprs_mentioned : t -> Reg.gpr list

(** Every SIMD register the instruction mentions. *)
val simds_mentioned : t -> Reg.simd list

(** True when the instruction defines RFLAGS bits. *)
val writes_flags : t -> bool

(** True when the instruction's behaviour depends on RFLAGS. *)
val reads_flags : t -> bool

(** Labels this instruction can transfer control to. *)
val targets : t -> string list

(** Coarse instruction classes for the cycle model and statistics. *)
type klass =
  | K_alu
  | K_load
  | K_store
  | K_branch
  | K_call
  | K_simd
  | K_div
  | K_setcc

val klass_name : klass -> string
val is_mem_operand : operand -> bool
val klass : t -> klass

(** Bare mnemonic (no operands or size suffix); condition codes are
    kept, so [jne] and [je] profile separately. *)
val mnemonic : t -> string

(** True when control cannot fall through past this instruction. *)
val is_barrier : t -> bool
