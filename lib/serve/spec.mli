(** Campaign job specs for the serve daemon.

    A spec is the [POST /jobs] body: the campaign configuration in
    canonical JSON, mirroring the [ferrum campaign] flags.  {!resolve}
    builds the same (program, target, manifest) triple the CLI builds,
    so a served job shares its {!Ferrum_campaign.Manifest.digest} with
    the equivalent command-line campaign. *)

module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json

type t = {
  benchmark : string;
  technique : string;  (** "raw" or a technique short name *)
  samples : int;
  seed : int64;
  shards : int;
  fault_bits : int;
  scope : string;  (** "original" | "all-sites" *)
  traced : bool;
  engine : string;  (** {!F.engine_name} form *)
}

(** Canonical rendering: fixed key order, stable across round-trips. *)
val to_json : t -> Json.t

val to_string : t -> string

(** Parse a submission; every field except [benchmark] defaults to the
    [ferrum campaign] flag default. *)
val of_json : Json.t -> (t, string) result

val of_string : string -> (t, string) result

type resolved = {
  spec : t;  (** normalised: re-serialising gives the canonical form *)
  program : Ferrum_asm.Prog.t;
  target : F.target;
  manifest : Ferrum_campaign.Manifest.t;
}

(** Validate against the catalogue and build the workload (runs the
    golden run — expensive, call once per submission). *)
val resolve : t -> (resolved, string) result
