(** [ferrum serve] — the campaign daemon.

    A single [Unix.select] loop multiplexing an HTTP/JSON API, one
    supervised runner child at a time, and forked SSE tailer children:

    - [POST /jobs] submits a {!Spec} (resolved and digested at
      submission: a run-store hit is answered [done] immediately —
      the cache hit — a miss is queued);
    - [GET /jobs], [GET /jobs/:id], [GET /metricz] serve the
      [ferrum.jobs.v1] queue state;
    - [GET /jobs/:id/events] streams the job's live event log as
      server-sent events with [Last-Event-ID] resume; the reassembled
      stream passes {!Ferrum_telemetry.Events.replay};
    - [GET /runs] and [GET /runs/:digest/...] serve the
      content-addressed run store ([ferrum.run.v1]);
    - [GET /] and [GET /history] serve the cross-run history page.

    Every JSON body is one of the repo's schema-versioned JSONL forms,
    so [ferrum metrics] can validate anything the server emits. *)

type config = {
  root : string;  (** daemon state directory (queue/, store/, port, pid) *)
  host : string;
  port : int;  (** 0 auto-assigns; the bound port is written to [port] *)
}

val queue_dir : string -> string
val store_root : string -> string

(** File recording the actually-bound port (written after listen). *)
val port_file : string -> string

val pid_file : string -> string

(** Live event log name inside a job directory. *)
val live_events_file : string

(** Bind, write the port/pid files, and serve forever. *)
val serve : config -> unit
