(** Minimal HTTP/1.1 over [Unix] file descriptors — just enough for
    the campaign daemon and its CLI clients.  One request per
    connection ([Connection: close]), [Content-Length] bodies only, no
    TLS, no chunked encoding; dependency-free by design. *)

(** {1 Server side} *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

(** Case-insensitive header lookup (the parser lowercases names). *)
val header_value : string -> (string * string) list -> string option

(** Parse one request off a connected socket.  Bodies above 1 MiB are
    dropped (job specs are tiny); a request line + headers exceeding
    64 KiB fails the parse, and a receive timeout or reset mid-read
    counts as end of input rather than raising. *)
val read_request : Unix.file_descr -> (request, string) result

(** Write [s] fully, retrying short writes. *)
val write_all : Unix.file_descr -> string -> unit

(** Write a complete response with [Content-Length]. *)
val respond :
  Unix.file_descr -> ?status:int -> ?headers:(string * string) list ->
  content_type:string -> string -> unit

(** [text/plain] error response. *)
val respond_error : Unix.file_descr -> int -> string -> unit

(** Start a streaming (SSE) response: status line and headers only, no
    [Content-Length]; the caller writes the body incrementally and
    closes the socket to end it. *)
val respond_stream : Unix.file_descr -> content_type:string -> unit

(** {1 Client side} *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

(** One-shot request: connect, send, read the whole response. *)
val request :
  host:string -> port:int -> meth:string -> path:string ->
  ?headers:(string * string) list -> ?body:string -> unit ->
  (response, string) result

(** Streaming GET: hand each body chunk to [on_chunk] until the server
    closes the connection; returns the response status. *)
val stream :
  host:string -> port:int -> path:string ->
  ?headers:(string * string) list -> on_chunk:(string -> unit) -> unit ->
  (int, string) result
