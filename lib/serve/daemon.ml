(* `ferrum serve` — the campaign daemon.

   One long-running process multiplexing three concerns over a single
   [Unix.select] loop, in the same fork-per-task style as the campaign
   runner:

     - an HTTP/JSON API on a loopback socket: POST /jobs submits a
       campaign spec, GET /jobs/:id polls typed state, GET /runs/...
       serves artifacts out of the content-addressed run store;
     - a supervised runner child: at most one job executes at a time
       (campaigns already fork a worker pool internally); the child
       streams renumbered live events into the job directory, writes
       the finished run into a spool and publishes it into the store,
       then reports through an outcome file reaped by the parent;
     - SSE tailer children: GET /jobs/:id/events forks a child that
       tails the job's live event log (complete lines only) and frames
       records as `id:`-numbered server-sent events, so a client
       reconnect with Last-Event-ID resumes without gaps and the
       reassembled stream replay-validates under [Events.replay].

   Every JSON body the daemon emits is one of the repo's
   schema-versioned JSONL forms ([ferrum.jobs.v1], [ferrum.run.v1],
   [ferrum.events.v1], ...), so `ferrum metrics` can validate anything
   the server returns.

   Layout under the daemon root:

     queue/jobs.jsonl       ferrum.jobs.v1 queue (source of truth)
     queue/job-<id>/        live events.jsonl, parts/, spool/
     store/<digest>/        published runs (content-addressed)
     store/index.jsonl      ferrum.run.v1 cross-run index
     port, pid              actual bound port / daemon pid *)

module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Events = Ferrum_telemetry.Events
module Sse = Ferrum_telemetry.Sse
module Trace = Ferrum_telemetry.Trace
module Runner = Ferrum_campaign.Runner
module Manifest = Ferrum_campaign.Manifest
module Store = Ferrum_campaign.Store
module Queue = Ferrum_campaign.Queue
module Fsutil = Ferrum_campaign.Fsutil
module Html = Ferrum_report.Html
module History = Ferrum_report.History

type config = { root : string; host : string; port : int }

let queue_dir root = Filename.concat root "queue"
let store_root root = Filename.concat root "store"
let port_file root = Filename.concat root "port"
let pid_file root = Filename.concat root "pid"
let live_events_file = "events.jsonl"
let outcome_file = "outcome.json"

(* Mirrors [Queue.job_dir] for children that must not load the queue
   (loading demotes Running jobs — a read-side effect only the daemon
   parent may trigger). *)
let job_dir_of qdir id = Filename.concat qdir (Fmt.str "job-%d" id)

(* Read-only job lookup straight off jobs.jsonl, for tailer children
   polling state from outside the daemon process. *)
let peek_job qdir id : Queue.job option =
  let path = Filename.concat qdir Queue.file in
  if not (Sys.file_exists path) then None
  else
    match Metrics.read_lines path with
    | _header :: records ->
      List.find_map
        (fun line ->
          match Option.map Queue.job_of_json (Json.of_string_opt line) with
          | Some (Ok j) when j.Queue.id = id -> Some j
          | _ -> None)
        records
    | [] -> None

(* ------------------------------------------------------------------ *)
(* Runner child: execute one job end to end.                           *)
(* ------------------------------------------------------------------ *)

(* The job's tracer: continue the client's traceparent context when
   the submission carried one (the whole CLI-to-worker story then
   stitches into the client's trace), else root a fresh trace derived
   from the spec — deterministic per submitted workload. *)
let job_tracer (job : Queue.job) (spec : Spec.t) =
  match Trace.of_traceparent job.Queue.trace with
  | Some (trace, parent) ->
    Trace.scoped
      (Trace.ctx_make ~trace ~parent ~seg:(Fmt.str "j%d" job.Queue.id))
      ~proc:"daemon"
  | None ->
    Trace.create
      ~trace:
        (Trace.derive_id ~seed:spec.Spec.seed
           (Fmt.str "job:%s" (Digest.to_hex (Digest.string job.Queue.spec))))
      ~proc:"daemon" ()

(* Run the job's campaign and publish the result.  Runs in a forked
   child; everything it tells the parent goes through the outcome
   file.  The live event log is renumbered in arrival order as it is
   appended — one flushed line per event — so a concurrent tailer
   always sees a prefix of a replay-consistent stream.

   The stored trace covers the daemon's side too: a "job" span wraps
   "queue-wait" (wall interval backdated to submission time),
   "resolve" (workload build + golden run) and the campaign, whose
   runner continues the job span's context — so /runs/:digest/trace
   serves one stitched trace from client submission to worker engine
   phases. *)
let run_job cfg ~jobdir (job : Queue.job) : (string, string) result =
  let ( let* ) = Result.bind in
  let* spec = Spec.of_string job.Queue.spec in
  let tracer = job_tracer job spec in
  let* manifest, result =
    Trace.span tracer "job" (fun () ->
        if job.Queue.submitted > 0.0 then
          Trace.span ~w_start:job.Queue.submitted tracer "queue-wait"
            (fun () -> ());
        let* r = Trace.span tracer "resolve" (fun () -> Spec.resolve spec) in
        let manifest = r.Spec.manifest in
        Fsutil.mkdir_p jobdir;
        (* Part files left by an earlier attempt are only replayed when
           they were written under a compatible manifest (same
           workload, seed, shard map ...) — the same gate the CLI
           campaign applies. *)
        (match Manifest.load ~dir:jobdir with
        | Ok recorded when Manifest.compatible recorded manifest -> ()
        | Ok _ | Error _ -> Fsutil.rm_rf (Store.parts_dir jobdir));
        Manifest.save ~dir:jobdir manifest;
        let all_sites = spec.Spec.scope = "all-sites" in
        let oc = open_out (Filename.concat jobdir live_events_file) in
        output_string oc
          (Json.to_string
             (Store.events_header ~benchmark:spec.Spec.benchmark
                ~technique:spec.Spec.technique ~samples:spec.Spec.samples
                ~seed:spec.Spec.seed ~all_sites
                ~fault_bits:spec.Spec.fault_bits ~shards:spec.Spec.shards));
        output_char oc '\n';
        flush oc;
        let seq = ref 0 in
        let on_event (e : Events.t) =
          output_string oc
            (Json.to_string (Events.to_json { e with seq = !seq }));
          output_char oc '\n';
          flush oc;
          incr seq
        in
        let mode = if spec.Spec.traced then Runner.Traced else Runner.Inject in
        let* result =
          match
            Runner.run ~fault_bits:spec.Spec.fault_bits
              ~part_dir:(Store.parts_dir jobdir) ~on_event ~mode
              ~trace_ctx:(Trace.ctx_for tracer ~seg:"c")
              ~shards:spec.Spec.shards ~seed:spec.Spec.seed
              ~samples:spec.Spec.samples r.Spec.target
          with
          | result -> Ok result
          | exception Failure msg -> Error msg
        in
        close_out oc;
        Ok (manifest, result))
  in
  (* Assemble the complete store entry in a spool directory, then
     publish it whole — the store only ever receives coherent runs.
     The daemon's own (now closed) spans prepend the campaign's. *)
  let spool = Filename.concat jobdir "spool" in
  Fsutil.rm_rf spool;
  Store.write_run
    ~extra_trace:(Trace.span_lines tracer, Trace.wall_lines tracer)
    ~dir:spool ~manifest ~result ();
  Fsutil.write_file
    (Filename.concat spool Store.run_file)
    (Store.jsonl (Store.run_header [])
       [ Json.to_string (Store.run_record ~manifest ~result) ]);
  (match Html.render_dir spool with
  | Ok html ->
    Fsutil.write_file (Filename.concat spool Store.dashboard_file) html
  | Error _ -> ());
  Store.publish ~root:(store_root cfg.root) ~src:spool

let write_outcome ~jobdir outcome =
  let j =
    match outcome with
    | Ok digest ->
      Json.Obj [ ("ok", Json.Int 1); ("digest", Json.Str digest) ]
    | Error e -> Json.Obj [ ("ok", Json.Int 0); ("error", Json.Str e) ]
  in
  Fsutil.write_file (Filename.concat jobdir outcome_file) (Json.to_string j)

let read_outcome ~jobdir : (string, string) result =
  let path = Filename.concat jobdir outcome_file in
  if not (Sys.file_exists path) then Error "runner died without an outcome"
  else
    match Json.of_string_opt (Fsutil.read_file path) with
    | Some j -> (
      match (Json.member "ok" j, Json.member "digest" j, Json.member "error" j)
      with
      | Some (Json.Int 1), Some (Json.Str d), _ -> Ok d
      | _, _, Some (Json.Str e) -> Error e
      | _ -> Error "malformed outcome file")
    | None -> Error "malformed outcome file"

(* ------------------------------------------------------------------ *)
(* SSE tailer child.                                                   *)
(* ------------------------------------------------------------------ *)

(* Complete lines of [path]: split on '\n' and drop the final element —
   the empty artifact after a terminated last line, or an unterminated
   fragment an appender is still writing.  Either way a torn record
   never leaks into the stream. *)
let complete_lines path =
  if not (Sys.file_exists path) then []
  else
    match List.rev (String.split_on_char '\n' (Fsutil.read_file path)) with
    | _last :: rev_rest -> List.rev rev_rest
    | [] -> []

(* Stream a job's events as SSE frames.  Record [i] of the log (header
   excluded) is sent with [id: i]; a reconnect with [Last-Event-ID: n]
   starts at record [n + 1].  The source is the job's live log while it
   exists, else the published store entry (cached jobs never have a
   live log).  Ends with a comment frame naming the final job state. *)
let stream_events cfg job_id ~last fd =
  Http.respond_stream fd ~content_type:"text/event-stream";
  Http.write_all fd (Sse.retry_frame 500);
  let qdir = queue_dir cfg.root in
  let live = Filename.concat (job_dir_of qdir job_id) live_events_file in
  let next = ref (last + 1) in
  let rec loop () =
    let job = peek_job qdir job_id in
    let source =
      if Sys.file_exists live then Some live
      else
        match job with
        | Some j when j.Queue.digest <> "" -> (
          match Store.lookup ~root:(store_root cfg.root) j.Queue.digest with
          | Store.Hit dir -> Some (Filename.concat dir Store.events_file)
          | Store.Corrupt _ | Store.Miss -> None)
        | _ -> None
    in
    (match source with
    | None -> ()
    | Some path ->
      let records =
        match complete_lines path with _header :: r -> r | [] -> []
      in
      List.iteri
        (fun i record ->
          if i >= !next then begin
            Http.write_all fd (Sse.encode ~id:i record);
            next := i + 1
          end)
        records);
    match job with
    | Some { Queue.state = Queue.Done | Queue.Failed; _ } ->
      let state =
        match job with
        | Some j -> Queue.state_name j.Queue.state
        | None -> "gone"
      in
      Http.write_all fd (Sse.comment (Fmt.str "job %d %s" job_id state))
    | None -> Http.write_all fd (Sse.comment (Fmt.str "job %d gone" job_id))
    | Some _ ->
      Unix.sleepf 0.1;
      loop ()
  in
  try loop ()
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* client went away; nothing to clean up *)
    ()

(* ------------------------------------------------------------------ *)
(* Daemon.                                                             *)
(* ------------------------------------------------------------------ *)

(* Latency histogram with fixed log-spaced bounds; cheap enough to
   update on every request, rendered only by /metricz?format=text. *)
let hist_bounds = [| 0.001; 0.01; 0.1; 1.0; 10.0 |]

type hist = {
  buckets : int array;  (** per-bound counts + overflow, non-cumulative *)
  mutable h_count : int;
  mutable h_sum : float;
}

let hist_make () =
  { buckets = Array.make (Array.length hist_bounds + 1) 0;
    h_count = 0;
    h_sum = 0.0 }

let hist_observe h v =
  let i = ref 0 in
  while !i < Array.length hist_bounds && v > hist_bounds.(!i) do incr i done;
  h.buckets.(!i) <- h.buckets.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

type daemon = {
  cfg : config;
  q : Queue.t;
  listen_fd : Unix.file_descr;
  mutable runner : (int * int * float) option;
      (** (job id, child pid, start wall time) *)
  mutable sse_children : int list;
  (* /metricz counters *)
  mutable http_requests : int;
  mutable jobs_submitted : int;
  mutable cache_hits : int;
  mutable sse_streams : int;
  http_seconds : hist;  (** request handling latency *)
  job_seconds : hist;  (** runner-child lifetime per finished job *)
}

let log fmt = Fmt.epr ("[serve] " ^^ fmt ^^ "@.")

(* A one-job jobs.v1 document — the body of POST /jobs and
   GET /jobs/:id responses, validating under `ferrum metrics`. *)
let job_doc (job : Queue.job) =
  Store.jsonl (Queue.header [ ("jobs", Json.Int 1) ])
    [ Json.to_string (Queue.job_to_json job) ]

let ndjson = "application/x-ndjson"

let serve_file fd ?(content_type = ndjson) path =
  if Sys.file_exists path then Http.respond fd ~content_type (Fsutil.read_file path)
  else Http.respond_error fd 404 (Fmt.str "no %s" (Filename.basename path))

(* POST /jobs: parse and resolve the spec (this builds the workload and
   runs the golden run — the submission cost), digest its manifest and
   check the store: a hit is answered [done] immediately without
   running anything; a miss is queued. *)
let submit_job d (req : Http.request) fd =
  match Result.bind (Spec.of_string req.Http.body) Spec.resolve with
  | Error e -> Http.respond_error fd 400 e
  | Ok r ->
    let digest = Manifest.digest r.Spec.manifest in
    let spec = Spec.to_string r.Spec.spec in
    (* The client's span context, carried on the job record so the
       runner child can stitch its spans under the caller's trace. *)
    let trace =
      match Http.header_value "traceparent" req.Http.headers with
      | Some tp when Trace.of_traceparent tp <> None -> tp
      | Some _ | None -> ""
    in
    let submitted = Unix.gettimeofday () in
    d.jobs_submitted <- d.jobs_submitted + 1;
    (match Store.lookup ~root:(store_root d.cfg.root) digest with
    | Store.Hit _ ->
      d.cache_hits <- d.cache_hits + 1;
      let job =
        Queue.submit d.q ~trace ~submitted ~spec ~digest ~cached:true
          ~state:Queue.Done
      in
      log "job %d cached (%s)" job.Queue.id digest;
      Http.respond fd ~status:200 ~content_type:ndjson (job_doc job)
    | Store.Corrupt _ | Store.Miss ->
      let job =
        Queue.submit d.q ~trace ~submitted ~spec ~digest ~cached:false
          ~state:Queue.Pending
      in
      log "job %d queued (%s)" job.Queue.id digest;
      Http.respond fd ~status:202 ~content_type:ndjson (job_doc job))

(* GET /metricz: the queue as a jobs.v1 document with daemon counters
   in the header and per-job event-log sizes on the records — extra
   fields ride along without breaking schema validation. *)
let metricz d fd =
  let qdir = queue_dir d.cfg.root in
  let record (j : Queue.job) =
    let live = Filename.concat (job_dir_of qdir j.Queue.id) live_events_file in
    let events_logged =
      match complete_lines live with [] -> 0 | lines -> List.length lines - 1
    in
    let base =
      match Queue.job_to_json j with Json.Obj l -> l | other -> [ ("job", other) ]
    in
    Json.to_string (Json.Obj (base @ [ ("events_logged", Json.Int events_logged) ]))
  in
  let jobs = Queue.jobs d.q in
  let header =
    Queue.header
      [
        ("jobs", Json.Int (List.length jobs));
        ("http_requests", Json.Int d.http_requests);
        ("jobs_submitted", Json.Int d.jobs_submitted);
        ("cache_hits", Json.Int d.cache_hits);
        ("sse_streams", Json.Int d.sse_streams);
      ]
  in
  Http.respond fd ~content_type:ndjson
    (Store.jsonl header (List.map record jobs))

(* GET /metricz?format=text: the same counters plus latency histograms
   in the text exposition format scrapers ingest.  The query-less form
   above stays the schema-validated jobs.v1 document. *)
let metricz_text d fd =
  let b = Buffer.create 1024 in
  let metric kind name help v =
    Buffer.add_string b
      (Fmt.str "# HELP %s %s\n# TYPE %s %s\n%s %d\n" name help name kind name
         v)
  in
  metric "counter" "ferrum_http_requests_total" "HTTP connections accepted"
    d.http_requests;
  metric "counter" "ferrum_jobs_submitted_total" "campaign jobs submitted"
    d.jobs_submitted;
  metric "counter" "ferrum_cache_hits_total"
    "submissions served from the run store" d.cache_hits;
  metric "counter" "ferrum_sse_streams_total" "SSE event streams opened"
    d.sse_streams;
  List.iter
    (fun st ->
      let n =
        List.length
          (List.filter (fun j -> j.Queue.state = st) (Queue.jobs d.q))
      in
      Buffer.add_string b
        (Fmt.str "ferrum_jobs{state=\"%s\"} %d\n" (Queue.state_name st) n))
    [ Queue.Pending; Queue.Running; Queue.Done; Queue.Failed ];
  let histogram name help (h : hist) =
    Buffer.add_string b
      (Fmt.str "# HELP %s %s\n# TYPE %s histogram\n" name help name);
    let cum = ref 0 in
    Array.iteri
      (fun i n ->
        cum := !cum + n;
        let le =
          if i < Array.length hist_bounds then Fmt.str "%g" hist_bounds.(i)
          else "+Inf"
        in
        Buffer.add_string b
          (Fmt.str "%s_bucket{le=\"%s\"} %d\n" name le !cum))
      h.buckets;
    Buffer.add_string b
      (Fmt.str "%s_sum %g\n%s_count %d\n" name h.h_sum name h.h_count)
  in
  histogram "ferrum_http_request_seconds" "request handling latency"
    d.http_seconds;
  histogram "ferrum_job_seconds" "runner-child lifetime per finished job"
    d.job_seconds;
  Http.respond fd ~content_type:"text/plain; version=0.0.4"
    (Buffer.contents b)

let run_artifact d digest artifact fd =
  match Store.lookup ~root:(store_root d.cfg.root) digest with
  | Store.Miss -> Http.respond_error fd 404 (Fmt.str "no run %s" digest)
  | Store.Corrupt e -> Http.respond_error fd 500 (Fmt.str "corrupt entry: %s" e)
  | Store.Hit dir -> (
    let file ?content_type name =
      serve_file fd ?content_type (Filename.concat dir name)
    in
    match artifact with
    | "records" -> file Store.injection_file
    | "vulnmap" -> file Store.vulnmap_file
    | "events" -> file Store.events_file
    | "stats" -> file Store.stats_file
    | "trace" -> file Store.trace_file
    | "trace-wall" -> file Store.trace_wall_file
    | "run" -> file Store.run_file
    | "manifest" -> file ~content_type:"application/json" Manifest.file
    | "dashboard" -> file ~content_type:"text/html" Store.dashboard_file
    | other -> Http.respond_error fd 404 (Fmt.str "no artifact %S" other))

let history_page d fd =
  match History.render ~root:(store_root d.cfg.root) with
  | Ok html -> Http.respond fd ~content_type:"text/html" html
  | Error e -> Http.respond_error fd 500 e

(* Route one parsed request.  SSE is the only handler that outlives the
   request: it forks, and the child exits when the stream ends. *)
let route d (req : Http.request) fd =
  let path, query =
    match String.index_opt req.Http.path '?' with
    | Some q ->
      ( String.sub req.Http.path 0 q,
        String.sub req.Http.path (q + 1)
          (String.length req.Http.path - q - 1) )
    | None -> (req.Http.path, "")
  in
  let query_has kv = List.mem kv (String.split_on_char '&' query) in
  let parts =
    List.filter (fun s -> s <> "") (String.split_on_char '/' path)
  in
  match (req.Http.meth, parts) with
  | "GET", [] | "GET", [ "history" ] -> history_page d fd
  | "GET", [ "healthz" ] ->
    Http.respond fd ~content_type:"text/plain" "ok\n"
  | "POST", [ "jobs" ] -> submit_job d req fd
  | "GET", [ "jobs" ] ->
    serve_file fd (Filename.concat (queue_dir d.cfg.root) Queue.file)
  | "GET", [ "jobs"; id ] -> (
    match Option.bind (int_of_string_opt id) (Queue.find d.q) with
    | Some job -> Http.respond fd ~content_type:ndjson (job_doc job)
    | None -> Http.respond_error fd 404 (Fmt.str "no job %s" id))
  | "GET", [ "jobs"; id; "events" ] -> (
    match Option.bind (int_of_string_opt id) (Queue.find d.q) with
    | None -> Http.respond_error fd 404 (Fmt.str "no job %s" id)
    | Some job ->
      let last =
        match Http.header_value "last-event-id" req.Http.headers with
        | Some v -> Option.value ~default:(-1) (int_of_string_opt v)
        | None -> -1
      in
      d.sse_streams <- d.sse_streams + 1;
      flush stdout;
      flush stderr;
      (match Unix.fork () with
      | 0 ->
        (try Unix.close d.listen_fd with Unix.Unix_error _ -> ());
        (try stream_events d.cfg job.Queue.id ~last fd with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Stdlib.exit 0
      | pid -> d.sse_children <- pid :: d.sse_children))
  | "GET", [ "runs" ] ->
    let index = Store.index_file (store_root d.cfg.root) in
    if not (Sys.file_exists index) then
      ignore (Store.rebuild_index ~root:(store_root d.cfg.root));
    serve_file fd index
  | "GET", [ "runs"; digest; artifact ] -> run_artifact d digest artifact fd
  | "GET", [ "metricz" ] ->
    if query_has "format=text" then metricz_text d fd else metricz d fd
  | meth, _ ->
    if meth = "GET" || meth = "POST" then
      Http.respond_error fd 404 (Fmt.str "no route %s %s" meth path)
    else Http.respond_error fd 405 (Fmt.str "method %s not allowed" meth)

let handle_connection d fd =
  d.http_requests <- d.http_requests + 1;
  let t0 = Unix.gettimeofday () in
  (* a wedged client must not hold the daemon: bound the header read *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with Unix.Unix_error _ -> ());
  (match Http.read_request fd with
  | Ok req -> (
    try route d req fd
    with
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
    | e ->
      log "handler error: %s" (Printexc.to_string e);
      (try Http.respond_error fd 500 "internal error"
       with Unix.Unix_error _ -> ()))
  | Error e -> (
    try Http.respond_error fd 400 e with Unix.Unix_error _ -> ()));
  hist_observe d.http_seconds (Unix.gettimeofday () -. t0);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Start the pending job's runner child. *)
let start_runner d (job : Queue.job) =
  Queue.update d.q { job with Queue.state = Queue.Running };
  let jobdir = job_dir_of (queue_dir d.cfg.root) job.Queue.id in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try Unix.close d.listen_fd with Unix.Unix_error _ -> ());
    let outcome =
      try run_job d.cfg ~jobdir job
      with e -> Error (Printexc.to_string e)
    in
    Fsutil.mkdir_p jobdir;
    write_outcome ~jobdir outcome;
    Stdlib.exit (match outcome with Ok _ -> 0 | Error _ -> 1)
  | pid ->
    log "job %d running (pid %d)" job.Queue.id pid;
    d.runner <- Some (job.Queue.id, pid, Unix.gettimeofday ())

(* Reap a finished runner child and record its outcome. *)
let finish_runner d job_id =
  let jobdir = job_dir_of (queue_dir d.cfg.root) job_id in
  match Queue.find d.q job_id with
  | None -> ()
  | Some job -> (
    match read_outcome ~jobdir with
    | Ok digest ->
      log "job %d done (%s)" job_id digest;
      Queue.update d.q
        { job with Queue.state = Queue.Done; digest; error = "" }
    | Error e ->
      log "job %d failed: %s" job_id e;
      Queue.update d.q { job with Queue.state = Queue.Failed; error = e })

let reaped pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true

(* The daemon loop: reap children, schedule the next pending job,
   accept one connection per select round. *)
let rec loop d =
  d.sse_children <- List.filter (fun pid -> not (reaped pid)) d.sse_children;
  (match d.runner with
  | Some (job_id, pid, t0) when reaped pid ->
    d.runner <- None;
    hist_observe d.job_seconds (Unix.gettimeofday () -. t0);
    finish_runner d job_id
  | _ -> ());
  (match (d.runner, Queue.next_pending d.q) with
  | None, Some job -> start_runner d job
  | _ -> ());
  (match Unix.select [ d.listen_fd ] [] [] 0.25 with
  | [ _ ], _, _ -> (
    (* accept can fail transiently (EINTR, ECONNABORTED, EMFILE under
       fd pressure from SSE forks) and a hostile client can error the
       handler; neither may take the daemon down with it. *)
    match Unix.accept d.listen_fd with
    | exception Unix.Unix_error (e, _, _) ->
      log "accept: %s" (Unix.error_message e)
    | fd, _ -> (
      try handle_connection d fd
      with e ->
        log "connection error: %s" (Printexc.to_string e);
        (try Unix.close fd with Unix.Unix_error _ -> ())))
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  loop d

(* Bind, record the actual port (supports --port 0 auto-assignment),
   and serve forever. *)
let serve (cfg : config) : unit =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Fsutil.mkdir_p cfg.root;
  let q = Queue.load ~dir:(queue_dir cfg.root) in
  Fsutil.mkdir_p (store_root cfg.root);
  let addr =
    try Unix.inet_addr_of_string cfg.host
    with Failure _ -> Unix.inet_addr_loopback
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (addr, cfg.port));
  Unix.listen listen_fd 16;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  Fsutil.write_file (port_file cfg.root) (Fmt.str "%d\n" port);
  Fsutil.write_file (pid_file cfg.root) (Fmt.str "%d\n" (Unix.getpid ()));
  log "listening on %s:%d, root %s" cfg.host port cfg.root;
  loop
    {
      cfg;
      q;
      listen_fd;
      runner = None;
      sse_children = [];
      http_requests = 0;
      jobs_submitted = 0;
      cache_hits = 0;
      sse_streams = 0;
      http_seconds = hist_make ();
      job_seconds = hist_make ();
    }
