(* Minimal HTTP/1.1 over Unix file descriptors — just enough for the
   campaign daemon and its CLI clients, in the same dependency-free
   style as the fork/select campaign runner.  One request per
   connection (Connection: close), Content-Length bodies only, no TLS,
   no chunked encoding. *)

let crlf = "\r\n"

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)
(* ------------------------------------------------------------------ *)

(* Buffered reader over a file descriptor: [read_line] returns lines
   without their terminator; [read_exactly] drains the buffer first.
   [total] counts every byte pulled off the socket, so callers can
   bound how much a peer may send before a parse point is reached. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t; mutable total : int }

exception Head_too_large

let reader fd = { fd; buf = Buffer.create 4096; total = 0 }

(* A receive timeout (SO_RCVTIMEO) surfaces as EAGAIN/EWOULDBLOCK and a
   reset peer as ECONNRESET; both mean "no more bytes are coming", so
   they read as EOF rather than escaping into the caller.  [limit], when
   given, caps [total] — checked after the bytes land, so a refill that
   pushes past the cap raises even when it also completes the parse. *)
let refill ?limit r =
  let chunk = Bytes.create 65536 in
  match Unix.read r.fd chunk 0 (Bytes.length chunk) with
  | 0 -> false
  | n -> (
    Buffer.add_subbytes r.buf chunk 0 n;
    r.total <- r.total + n;
    match limit with
    | Some l when r.total > l -> raise Head_too_large
    | _ -> true)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNRESET), _, _) ->
    false

let rec read_line ?limit r =
  let data = Buffer.contents r.buf in
  match String.index_opt data '\n' with
  | Some nl ->
    let line = String.sub data 0 nl in
    Buffer.clear r.buf;
    Buffer.add_substring r.buf data (nl + 1) (String.length data - nl - 1);
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    Some line
  | None -> if refill ?limit r then read_line ?limit r else None

let rec read_exactly r n =
  if Buffer.length r.buf >= n then begin
    let data = Buffer.contents r.buf in
    let out = String.sub data 0 n in
    Buffer.clear r.buf;
    Buffer.add_substring r.buf data n (String.length data - n);
    Some out
  end
  else if refill r then read_exactly r n
  else None

(* Read whatever remains until EOF (bodies without Content-Length). *)
let rec read_all r =
  if refill r then read_all r
  else begin
    let s = Buffer.contents r.buf in
    Buffer.clear r.buf;
    s
  end

(* ------------------------------------------------------------------ *)
(* Requests (server side).                                             *)
(* ------------------------------------------------------------------ *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

let header_value name (headers : (string * string) list) =
  List.assoc_opt (String.lowercase_ascii name) headers

let parse_headers ?limit r =
  let rec go acc =
    match read_line ?limit r with
    | None | Some "" -> List.rev acc
    | Some line -> (
      match String.index_opt line ':' with
      | None -> go acc
      | Some colon ->
        let name =
          String.lowercase_ascii (String.trim (String.sub line 0 colon))
        in
        let value =
          String.trim
            (String.sub line (colon + 1) (String.length line - colon - 1))
        in
        go ((name, value) :: acc))
  in
  go []

(* Body size cap: job specs are tiny; anything bigger is abuse.  The
   request line + headers get their own, tighter cap so a client
   streaming endless header bytes cannot exhaust the daemon's memory. *)
let max_body = 1 lsl 20
let max_head = 1 lsl 16

let read_request fd : (request, string) result =
  let r = reader fd in
  try
    match read_line ~limit:max_head r with
    | None -> Error "empty request"
    | Some request_line -> (
      match String.split_on_char ' ' request_line with
      | meth :: path :: _ ->
        let headers = parse_headers ~limit:max_head r in
        let body =
          match
            Option.map int_of_string_opt (header_value "content-length" headers)
          with
          | Some (Some n) when n >= 0 && n <= max_body ->
            Option.value ~default:"" (read_exactly r n)
          | _ -> ""
        in
        Ok { meth; path; headers; body }
      | _ -> Error (Fmt.str "malformed request line %S" request_line))
  with Head_too_large ->
    Error (Fmt.str "request head exceeds %d bytes" max_head)

(* ------------------------------------------------------------------ *)
(* Responses.                                                          *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 500 -> "Internal Server Error"
  | 502 -> "Bad Gateway"
  | _ -> "Unknown"

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let respond fd ?(status = 200) ?(headers = []) ~content_type body =
  let head =
    String.concat crlf
      ([
         Fmt.str "HTTP/1.1 %d %s" status (status_text status);
         Fmt.str "Content-Type: %s" content_type;
         Fmt.str "Content-Length: %d" (String.length body);
         "Connection: close";
       ]
      @ List.map (fun (k, v) -> Fmt.str "%s: %s" k v) headers
      @ [ ""; "" ])
  in
  write_all fd head;
  write_all fd body

let respond_error fd status msg =
  respond fd ~status ~content_type:"text/plain" (msg ^ "\n")

(* Start a streaming response (SSE): headers only, no Content-Length;
   the caller writes the body incrementally and closes the socket. *)
let respond_stream fd ~content_type =
  write_all fd
    (String.concat crlf
       [
         "HTTP/1.1 200 OK";
         Fmt.str "Content-Type: %s" content_type;
         "Cache-Control: no-store";
         "Connection: close";
         "";
         "";
       ])

(* ------------------------------------------------------------------ *)
(* Client.                                                             *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let connect ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  fd

let send_request fd ~meth ~path ?(headers = []) ?(body = "") () =
  let head =
    String.concat crlf
      ([
         Fmt.str "%s %s HTTP/1.1" meth path;
         "Host: ferrum";
         Fmt.str "Content-Length: %d" (String.length body);
         "Connection: close";
       ]
      @ List.map (fun (k, v) -> Fmt.str "%s: %s" k v) headers
      @ [ ""; "" ])
  in
  write_all fd head;
  write_all fd body

(* Read the status line + headers; leaves the reader positioned at the
   body, for streaming consumers. *)
let read_response_head r : (int * (string * string) list, string) result =
  match read_line r with
  | None -> Error "no response"
  | Some status_line -> (
    match String.split_on_char ' ' status_line with
    | _http :: code :: _ -> (
      match int_of_string_opt code with
      | Some status -> Ok (status, parse_headers r)
      | None -> Error (Fmt.str "bad status line %S" status_line))
    | _ -> Error (Fmt.str "bad status line %S" status_line))

(* One-shot request: connect, send, read the whole response. *)
let request ~host ~port ~meth ~path ?headers ?body () :
    (response, string) result =
  match connect ~host ~port with
  | exception e -> Error (Fmt.str "connect %s:%d: %s" host port (Printexc.to_string e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        send_request fd ~meth ~path ?headers ?body ();
        let r = reader fd in
        match read_response_head r with
        | Error e -> Error e
        | Ok (status, r_headers) ->
          let r_body =
            match
              Option.map int_of_string_opt
                (header_value "content-length" r_headers)
            with
            | Some (Some n) when n >= 0 ->
              Option.value ~default:"" (read_exactly r n)
            | _ -> read_all r
          in
          Ok { status; r_headers; r_body })

(* Streaming GET: connect, send, parse the head, then hand each body
   chunk to [on_chunk] until EOF.  Returns the status. *)
let stream ~host ~port ~path ?headers ~on_chunk () : (int, string) result =
  match connect ~host ~port with
  | exception e -> Error (Fmt.str "connect %s:%d: %s" host port (Printexc.to_string e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        send_request fd ~meth:"GET" ~path ?headers ();
        let r = reader fd in
        match read_response_head r with
        | Error e -> Error e
        | Ok (status, _) ->
          (* drain the reader's buffer, then the socket *)
          let buffered = Buffer.contents r.buf in
          Buffer.clear r.buf;
          if buffered <> "" then on_chunk buffered;
          let chunk = Bytes.create 65536 in
          let rec pump () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              on_chunk (Bytes.sub_string chunk 0 n);
              pump ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
          in
          pump ();
          Ok status)
