(* Campaign job specs for the serve daemon.

   A spec is the POST /jobs body: the campaign configuration in
   canonical JSON, mirroring the `ferrum campaign` flags.  [resolve]
   turns a spec into the same (program, target, manifest) triple the
   CLI builds, so a served job is bit-identical to the equivalent
   command-line campaign — and therefore shares its manifest digest
   with it in the content-addressed run store. *)

module F = Ferrum_faultsim.Faultsim
module Machine = Ferrum_machine.Machine
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog
module Json = Ferrum_telemetry.Json
module Manifest = Ferrum_campaign.Manifest

type t = {
  benchmark : string;
  technique : string;  (** "raw" or a {!Technique.short_name} *)
  samples : int;
  seed : int64;
  shards : int;
  fault_bits : int;
  scope : string;  (** "original" | "all-sites" *)
  traced : bool;
  engine : string;  (** {!F.engine_name} form *)
}

(* Canonical rendering: fixed key order, so the queue's stored spec
   strings are stable and comparable. *)
let to_json (s : t) : Json.t =
  Json.Obj
    [
      ("benchmark", Json.Str s.benchmark);
      ("technique", Json.Str s.technique);
      ("samples", Json.Int s.samples);
      ("seed", Json.Str (Int64.to_string s.seed));
      ("shards", Json.Int s.shards);
      ("fault_bits", Json.Int s.fault_bits);
      ("scope", Json.Str s.scope);
      ("traced", Json.Int (if s.traced then 1 else 0));
      ("engine", Json.Str s.engine);
    ]

let to_string s = Json.to_string (to_json s)

let ( let* ) = Result.bind

(* Submission-side defaults match the `ferrum campaign` flag defaults;
   only [benchmark] is required. *)
let of_json (j : Json.t) : (t, string) result =
  let str name default =
    match Json.member name j with
    | Some (Json.Str v) -> Ok v
    | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Fmt.str "spec: missing field %S" name))
    | Some _ -> Error (Fmt.str "spec: field %S must be a string" name)
  in
  let int name default =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | None -> Ok default
    | Some _ -> Error (Fmt.str "spec: field %S must be an integer" name)
  in
  let* benchmark = str "benchmark" None in
  let* technique = str "technique" (Some "raw") in
  let* samples = int "samples" 400 in
  let* seed_s = str "seed" (Some "2024") in
  let* seed =
    match Int64.of_string_opt seed_s with
    | Some v -> Ok v
    | None -> Error (Fmt.str "spec: bad seed %S" seed_s)
  in
  let* shards = int "shards" 4 in
  let* fault_bits = int "fault_bits" 1 in
  let* scope = str "scope" (Some "original") in
  let* traced = int "traced" 1 in
  let* engine = str "engine" (Some (F.engine_name F.default_engine)) in
  Ok
    {
      benchmark;
      technique;
      samples;
      seed;
      shards;
      fault_bits;
      scope;
      traced = traced <> 0;
      engine;
    }

let of_string s =
  match Json.of_string_opt s with
  | None -> Error "spec: not JSON"
  | Some j -> of_json j

(* Everything [resolve] needs to run the campaign. *)
type resolved = {
  spec : t;  (** normalised: re-serialising gives the canonical form *)
  program : Ferrum_asm.Prog.t;
  target : F.target;
  manifest : Manifest.t;
}

(* Validate a spec against the catalogue and build its workload.  This
   mirrors the CLI campaign path with default transform knobs: build
   the benchmark IR, protect (or not), load, prepare the injection
   target, derive the manifest.  Expensive (runs the golden run), so
   the daemon calls it once per submission and keeps the result. *)
let resolve (s : t) : (resolved, string) result =
  let* entry =
    match Catalog.find s.benchmark with
    | Some e -> Ok e
    | None ->
      Error
        (Fmt.str "unknown benchmark %S; try: %s" s.benchmark
           (String.concat ", " Catalog.names))
  in
  let* technique =
    if s.technique = "raw" then Ok None
    else
      match Technique.of_short_name s.technique with
      | Some t -> Ok (Some t)
      | None ->
        Error
          (Fmt.str "unknown technique %S; expected raw, ir-eddi, hybrid \
                    or ferrum" s.technique)
  in
  let* all_sites =
    match s.scope with
    | "original" -> Ok false
    | "all-sites" -> Ok true
    | other -> Error (Fmt.str "unknown scope %S" other)
  in
  let* engine =
    match F.engine_of_name s.engine with
    | Some e -> Ok e
    | None -> Error (Fmt.str "unknown engine %S" s.engine)
  in
  let* () = if s.samples >= 1 then Ok () else Error "samples must be >= 1" in
  let* () =
    if s.shards >= 1 && s.shards <= s.samples then Ok ()
    else Error "shards must be >= 1 and <= samples"
  in
  let* () =
    if s.fault_bits >= 1 then Ok () else Error "fault_bits must be >= 1"
  in
  let m = entry.Catalog.build () in
  let program =
    match technique with
    | None -> (Pipeline.raw m).Pipeline.program
    | Some t -> (Pipeline.protect t m).Pipeline.program
  in
  let img = Machine.load program in
  let scope = if all_sites then F.All_sites else F.Original_only in
  let* target =
    try Ok (F.prepare ~scope ~engine img)
    with Invalid_argument msg -> Error msg
  in
  let manifest =
    Manifest.make ~benchmark:s.benchmark ~technique:s.technique
      ~samples:s.samples ~seed:s.seed ~shards:s.shards
      ~fault_bits:s.fault_bits ~all_sites ~traced:s.traced ~program target
  in
  Ok { spec = s; program; target; manifest }
